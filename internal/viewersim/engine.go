package viewersim

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cdn"
	"repro/internal/clock"
	"repro/internal/delay"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/rng"
)

// sim carries the run state both engines share: the CDN under test, the
// delay histograms, the atomic counters, and the entity pools. Everything an
// event handler touches is either entity-private (viewer/broadcast state,
// serialized per owner), lock-protected inside the cdn package, or a
// commutative atomic — so wheel shards may fire one tick's events in
// parallel without perturbing the deterministic outcome.
type sim struct {
	cfg Config
	w   *world
	reg *metrics.Registry
	ctx context.Context

	clk    clock.Clock
	wheel  *clock.Wheel
	origin *cdn.Origin
	edge   *cdn.Edge

	rh, hh *delay.ComponentHists
	ctr    counters

	bpool sync.Pool
	vpool sync.Pool

	payload []byte

	end    time.Time
	events int64
}

type counters struct {
	views      atomic.Int64
	rtmpViews  atomic.Int64
	hlsViews   atomic.Int64
	chunks     atomic.Int64
	polls      atomic.Int64
	deliveries atomic.Int64
}

func newSim(cfg Config, w *world) *sim {
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &sim{
		cfg:     cfg,
		w:       w,
		reg:     reg,
		ctx:     context.Background(),
		rh:      delay.NewComponentHists(reg, "rtmp"),
		hh:      delay.NewComponentHists(reg, "hls"),
		payload: make([]byte, 32),
	}
	s.bpool.New = func() interface{} { return &bcastRun{s: s} }
	s.vpool.New = func() interface{} {
		v := &viewer{}
		v.fireFn = func(time.Time) { s.wheelViewer(v) }
		return v
	}
	return s
}

// buildCDN stands up the in-process origin and edge on the engine's clock.
// The origin chunks at FrameDuration so one Ingest call seals exactly one
// chunk — the trace already decided chunk boundaries, the origin just has to
// publish them through the real invalidation path.
func (s *sim) buildCDN(clk clock.Clock) {
	s.clk = clk
	s.origin = cdn.NewOrigin(cdn.OriginConfig{
		Site:          s.w.origin,
		ChunkDuration: media.FrameDuration,
		Clock:         clk,
		Metrics:       s.reg,
	})
	s.edge = cdn.NewEdge(cdn.EdgeConfig{
		Site: s.w.edge,
		Resolve: func(string) (cdn.Upstream, error) {
			return cdn.Upstream{Store: s.origin}, nil
		},
		Clock:   clk,
		Metrics: s.reg,
	})
	s.origin.RegisterEdge(s.edge)
}

// bcastRun is one live broadcast's mutable state. All of it is touched only
// from the broadcast's own owner key (one wheel shard / one reference
// goroutine at a time) except remaining, which viewers decrement from their
// own shards.
type bcastRun struct {
	s         *sim
	sp        bcastSpec
	id        string
	start     time.Time
	tr        btrace
	joins     []time.Duration
	nextJoin  int
	nextChunk int
	remaining atomic.Int64

	fireIngest func(time.Time)
	fireJoin   func(time.Time)
}

func (b *bcastRun) abs(off time.Duration) time.Time { return b.start.Add(off) }

// setupBroadcast materializes a spec at its start time: trace, join
// schedule, liveness count (viewers + the broadcaster's ingest chain).
func (s *sim) setupBroadcast(sp bcastSpec) *bcastRun {
	b := s.bpool.Get().(*bcastRun)
	b.sp = sp
	b.id = "b" + strconv.Itoa(sp.idx)
	b.start = s.w.start.Add(sp.start)
	src := rng.NewStream(s.cfg.Seed, bcastKey(sp.idx))
	genTrace(s.w, sp, src, &b.tr)
	b.joins = b.joins[:0]
	for i := 0; i < sp.views; i++ {
		// Audiences are front-loaded (Fig. 6: most viewers arrive near
		// the start): dur·u² biases joins toward the beginning.
		u := src.Float64()
		b.joins = append(b.joins, time.Duration(float64(sp.dur)*u*u))
	}
	sort.Slice(b.joins, func(i, j int) bool { return b.joins[i] < b.joins[j] })
	b.nextJoin = 0
	b.nextChunk = 0
	b.remaining.Store(int64(sp.views) + 1)
	return b
}

// ingestChunk feeds the next sealed chunk into the origin at its trace
// ready time, flowing through the real invalidate path to the edge.
//
//livesim:hotpath
func (s *sim) ingestChunk(b *bcastRun) {
	c := b.nextChunk
	b.nextChunk++
	s.origin.Ingest(b.id, media.Frame{
		Seq:        uint64(c),
		CapturedAt: b.abs(b.tr.capturedOf(c)),
		Keyframe:   true,
		Payload:    s.payload,
	}, s.clk.Now())
	s.ctr.chunks.Add(1)
}

// newViewer builds the session for join index idx, or counts an empty view
// and returns nil when the viewer joined too late to see any content.
func (s *sim) newViewer(b *bcastRun, idx int) *viewer {
	v := s.vpool.Get().(*viewer)
	v.reset(s, b, idx)
	if v.init() {
		return v
	}
	s.countView(v.isRTMP)
	s.releaseViewer(v)
	s.userDone(b)
	return nil
}

func (s *sim) countView(isRTMP bool) {
	if isRTMP {
		s.ctr.rtmpViews.Add(1)
	} else {
		s.ctr.hlsViews.Add(1)
	}
	s.ctr.views.Add(1)
}

// deliver runs one viewer event: HLS sessions touch the real edge chunklist
// (the in-process fast path every poll exercises), then the state machine
// advances. done means the session finished and was torn down.
//
//livesim:hotpath
func (s *sim) deliver(v *viewer) (next time.Duration, done bool) {
	if !v.isRTMP {
		s.ctr.polls.Add(1)
		_, _ = s.edge.ChunkListRaw(s.ctx, v.b.id)
	}
	s.ctr.deliveries.Add(1)
	next, done = v.advance()
	if done {
		s.finishViewer(v)
		return 0, true
	}
	return next, false
}

// finishViewer observes the session's mean component decomposition into the
// proto-labelled histograms and releases it.
func (s *sim) finishViewer(v *viewer) {
	comp := v.components()
	if v.isRTMP {
		s.rh.Observe(comp)
	} else {
		s.hh.Observe(comp)
	}
	s.countView(v.isRTMP)
	b := v.b
	s.releaseViewer(v)
	s.userDone(b)
}

func (s *sim) releaseViewer(v *viewer) {
	v.s = nil
	v.b = nil
	v.model = nil
	s.vpool.Put(v)
}

// userDone retires one participant (viewer or broadcaster); the last one out
// removes the broadcast from the CDN and recycles its state.
func (s *sim) userDone(b *bcastRun) {
	if b.remaining.Add(-1) == 0 {
		s.origin.Remove(b.id)
		s.edge.Evict(b.id)
		s.bpool.Put(b)
	}
}

func (s *sim) summary() *Summary {
	return &Summary{
		Broadcasts: len(s.w.specs),
		Views:      s.ctr.views.Load(),
		RTMPViews:  s.ctr.rtmpViews.Load(),
		HLSViews:   s.ctr.hlsViews.Load(),
		Chunks:     s.ctr.chunks.Load(),
		Polls:      s.ctr.polls.Load(),
		Deliveries: s.ctr.deliveries.Load(),
		Events:     s.events,
		RTMP:       s.rh.Means(),
		HLS:        s.hh.Means(),
		Start:      s.w.start,
		End:        s.end,
	}
}

// runWheel drives the day on the sharded timer wheel: every broadcast start
// is scheduled up front on the broadcast's owner key, and all subsequent
// events (ingest chain, join chain, per-viewer delivery chains) are
// rescheduled from callbacks on their owners' shards.
func (s *sim) runWheel() {
	wh := clock.NewWheel(clock.WheelConfig{
		Epoch:      s.w.start,
		Shards:     s.cfg.Shards,
		Resolution: s.cfg.Resolution,
		Slots:      s.cfg.Slots,
	})
	s.wheel = wh
	s.buildCDN(wh)
	for i := range s.w.specs {
		sp := s.w.specs[i]
		wh.ScheduleAt(bcastKey(sp.idx), s.w.start.Add(sp.start), func(time.Time) {
			s.wheelStart(sp)
		})
	}
	s.end = wh.Run()
	s.events = wh.Fired()
	wh.Close()
	_ = s.origin.Close()
}

func (s *sim) wheelStart(sp bcastSpec) {
	b := s.setupBroadcast(sp)
	if b.fireIngest == nil {
		// Bound to the pooled object once; reuses survive recycling
		// because the closures indirect through b.
		b.fireIngest = func(time.Time) { s.wheelIngest(b) }
		b.fireJoin = func(time.Time) { s.wheelJoin(b) }
	}
	s.wheel.ScheduleAt(bcastKey(sp.idx), b.abs(b.tr.readyAt[0]), b.fireIngest)
	if len(b.joins) > 0 {
		s.wheel.ScheduleAt(bcastKey(sp.idx), b.abs(b.joins[0]), b.fireJoin)
	}
}

//livesim:hotpath
func (s *sim) wheelIngest(b *bcastRun) {
	s.ingestChunk(b)
	if b.nextChunk < b.tr.chunks() {
		s.wheel.ScheduleAt(bcastKey(b.sp.idx), b.abs(b.tr.readyAt[b.nextChunk]), b.fireIngest)
		return
	}
	s.userDone(b) // broadcaster leaves
}

//livesim:hotpath
func (s *sim) wheelJoin(b *bcastRun) {
	idx := b.nextJoin
	b.nextJoin++
	if b.nextJoin < len(b.joins) {
		s.wheel.ScheduleAt(bcastKey(b.sp.idx), b.abs(b.joins[b.nextJoin]), b.fireJoin)
	}
	if v := s.newViewer(b, idx); v != nil {
		s.wheel.ScheduleAt(v.key, b.abs(v.nextAt), v.fireFn)
	}
}

//livesim:hotpath
func (s *sim) wheelViewer(v *viewer) {
	next, done := s.deliver(v)
	if done {
		return
	}
	s.wheel.ScheduleAt(v.key, v.b.abs(next), v.fireFn)
}
