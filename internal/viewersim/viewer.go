package viewersim

import (
	"sort"
	"time"

	"repro/internal/delay"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// viewer is one watching session's state machine, shared verbatim by both
// engines: the wheel drives advance from timer callbacks, the goroutine
// reference from a loop around coordinator sleeps. All times are offsets
// from the broadcast's start.
//
// RTMP sessions are simulated at chunk-duration windows rather than per
// frame (a 1:1 day has ~10^10 frames — two orders of magnitude more events
// than chunks, for no extra accounting fidelity): each event drains the
// window of frames ending at readyAt[c] plus one drawn transit, with the
// upload component sampled at the window's first frame and last-mile at its
// last, the same first-frame convention delay.HLSComponents applies to
// chunks. HLS sessions poll a chunklist grid anchored at their join time and
// fetch each chunk one last-mile draw after the poll that first observes it,
// mirroring delay.HLSItems.
type viewer struct {
	s      *sim
	b      *bcastRun
	key    uint64
	model  *netsim.Model
	isRTMP bool
	join   time.Duration
	// cur is the next chunk (window) to deliver; nextAt its event offset.
	cur     int
	nextAt  time.Duration
	prevArr time.Duration
	// Component sums over delivered windows, delay.Components order
	// (upload, chunking, wowza2fastly, polling, lastmile); buffering comes
	// from the player accumulator.
	sums [5]time.Duration
	n    int
	play playAcc
	// fireFn is the wheel callback, built once per pooled viewer.
	fireFn func(time.Time)
}

// reset binds a pooled viewer to one (broadcast, join index) session and
// re-derives its private rng stream; everything the session draws afterwards
// is independent of scheduling order.
func (v *viewer) reset(s *sim, b *bcastRun, idx int) {
	v.s = s
	v.b = b
	v.key = viewerKey(b.sp.idx, idx)
	v.model = netsim.NewModel(netsim.Params{}, rng.NewStream(s.cfg.Seed, v.key))
	v.isRTMP = idx < b.sp.rtmp
	v.join = b.joins[idx]
	v.cur = 0
	v.nextAt = 0
	v.prevArr = 0
	v.sums = [5]time.Duration{}
	v.n = 0
	if v.isRTMP {
		v.play.reset(s.cfg.RTMPPreBuffer)
	} else {
		v.play.reset(s.cfg.HLSPreBuffer)
	}
}

// init positions the viewer at its first visible chunk and computes the
// first event offset; false means the session joined too late to ever see
// content (an empty view).
func (v *viewer) init() bool {
	tr := &v.b.tr
	if v.isRTMP {
		// Live RTMP picks up the stream at the first window whose
		// content starts at or after the join.
		c := sort.Search(tr.chunks(), func(i int) bool { return tr.originAt[i] >= v.join })
		if c == tr.chunks() {
			return false
		}
		v.cur = c
		v.nextAt = v.rtmpArrival(c)
		return true
	}
	// Live HLS skips chunks that were already at the edge before the join
	// and polls on a grid anchored at the join (the client's first
	// chunklist fetch); the join's randomness supplies the poll phase.
	c := sort.Search(tr.chunks(), func(i int) bool { return tr.edgeAt[i] >= v.join })
	if c == tr.chunks() {
		return false
	}
	v.cur = c
	v.nextAt = v.pollFor(c)
	return true
}

// pollFor is the first poll-grid instant that observes chunk c (⑭).
func (v *viewer) pollFor(c int) time.Duration {
	return nextAfter(v.b.tr.edgeAt[c], v.s.cfg.PollInterval, v.join)
}

// rtmpArrival draws window c's transit and returns its fully-drained offset,
// ordered after everything already received.
func (v *viewer) rtmpArrival(c int) time.Duration {
	w := v.s.w
	arr := v.b.tr.readyAt[c] +
		v.model.OneWay(w.origin.Location, w.viewer) +
		v.model.LastMile(netsim.WiFi, frameBytes)
	if arr < v.prevArr {
		arr = v.prevArr
	}
	v.prevArr = arr
	return arr
}

// advance delivers chunk v.cur at offset v.nextAt, accumulates its delay
// components, and computes the next event; done reports the session's end.
//
//livesim:hotpath
func (v *viewer) advance() (next time.Duration, done bool) {
	tr := &v.b.tr
	c := v.cur
	if v.isRTMP {
		arr := v.nextAt
		v.sums[0] += tr.originAt[c] - tr.capturedOf(c)
		v.sums[4] += arr - tr.readyAt[c]
		v.play.add(arr, tr.contentOf(c))
	} else {
		seen := v.nextAt
		lm := v.model.LastMile(netsim.WiFi, tr.bytesOf(c))
		fetched := seen + lm
		if fetched < v.prevArr {
			fetched = v.prevArr
		}
		v.prevArr = fetched
		v.sums[0] += tr.originAt[c] - tr.capturedOf(c)
		v.sums[1] += tr.readyAt[c] - tr.originAt[c]
		v.sums[2] += tr.edgeAt[c] - tr.readyAt[c]
		v.sums[3] += seen - tr.edgeAt[c]
		v.sums[4] += fetched - seen
		// HLS player items carry the nominal chunk duration, as in
		// delay.HLSItems.
		v.play.add(fetched, v.s.cfg.ChunkDuration)
	}
	v.n++
	v.cur++
	if v.cur == tr.chunks() {
		return 0, true
	}
	if v.isRTMP {
		v.nextAt = v.rtmpArrival(v.cur)
	} else {
		v.nextAt = v.pollFor(v.cur)
	}
	return v.nextAt, false
}

// components reduces the session to its mean Fig. 11 decomposition.
func (v *viewer) components() delay.Components {
	if v.n == 0 {
		return delay.Components{}
	}
	n := time.Duration(v.n)
	return delay.Components{
		Upload:       v.sums[0] / n,
		Chunking:     v.sums[1] / n,
		Wowza2Fastly: v.sums[2] / n,
		Polling:      v.sums[3] / n,
		LastMile:     v.sums[4] / n,
		Buffering:    v.play.mean(),
	}
}

// playAcc is a streaming re-implementation of player.Simulate for monotone
// arrivals (which the viewer's TCP-ordering clamps guarantee): O(1) work and
// zero allocations per item, with items pended only until the pre-buffer
// fills. TestPlayAccMatchesSimulate pins the equivalence.
type playAcc struct {
	pre      time.Duration
	started  bool
	start    time.Duration // playback start (pre-buffer satisfied)
	offset   time.Duration // content offset of the next item's slot
	buffered time.Duration // content accumulated while pending
	pendArr  []time.Duration
	pendDur  []time.Duration
	played   int
	total    time.Duration
}

func (p *playAcc) reset(pre time.Duration) {
	p.pre = pre
	p.started = false
	p.start = 0
	p.offset = 0
	p.buffered = 0
	p.pendArr = p.pendArr[:0]
	p.pendDur = p.pendDur[:0]
	p.played = 0
	p.total = 0
}

//livesim:hotpath
func (p *playAcc) add(arr, dur time.Duration) {
	if p.started {
		p.playItem(arr, dur)
		return
	}
	p.pendArr = append(p.pendArr, arr)
	p.pendDur = append(p.pendDur, dur)
	p.buffered += dur
	if p.pre <= 0 || p.buffered >= p.pre {
		p.startAt(arr)
	}
}

// startAt begins playback (start = the arrival that satisfied the
// pre-buffer, or the first arrival when P≤0) and drains the pended prefix.
func (p *playAcc) startAt(at time.Duration) {
	p.started = true
	p.start = at
	for i := range p.pendArr {
		p.playItem(p.pendArr[i], p.pendDur[i])
	}
	p.pendArr = p.pendArr[:0]
	p.pendDur = p.pendDur[:0]
}

// playItem applies player.Simulate's fixed schedule: the slot advances for
// every item, latecomers past their slot's end are discarded, and played
// items record max(0, scheduled−arrival) buffering.
func (p *playAcc) playItem(arr, dur time.Duration) {
	sched := p.start + p.offset
	p.offset += dur
	if arr > sched+dur {
		return
	}
	d := sched - arr
	if d < 0 {
		d = 0
	}
	p.total += d
	p.played++
}

// mean finalizes the session (a broadcast shorter than the pre-buffer starts
// at its last arrival, as player.startTime does) and returns the mean
// buffering delay over played items.
func (p *playAcc) mean() time.Duration {
	if !p.started {
		if len(p.pendArr) == 0 {
			return 0
		}
		p.startAt(p.pendArr[len(p.pendArr)-1])
	}
	if p.played == 0 {
		return 0
	}
	return p.total / time.Duration(p.played)
}
