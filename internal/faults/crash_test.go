package faults_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/faults"
	"repro/internal/testutil"
)

// TestCrashSchedulerRunsPlan: the full cycle runs in order — wait, kill,
// corrupt, wait, restart — against the planned target.
func TestCrashSchedulerRunsPlan(t *testing.T) {
	testutil.CheckGoroutines(t)
	var order []string
	mk := func(name string) faults.TargetFuncs {
		return faults.TargetFuncs{
			KillFn:    func() error { order = append(order, name+":kill"); return nil },
			RestartFn: func() error { order = append(order, name+":restart"); return nil },
		}
	}
	cs := faults.NewCrashScheduler(faults.CrashPlan{
		Target:   1,
		After:    time.Millisecond,
		Downtime: time.Millisecond,
		Corrupt:  func(i int) { order = append(order, "corrupt") },
	}, []faults.CrashTarget{mk("a"), mk("b")})
	if cs.Target() != 1 {
		t.Fatalf("target = %d, want 1", cs.Target())
	}
	if err := cs.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	want := []string{"b:kill", "corrupt", "b:restart"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	st := cs.Stats()
	if st.Crashes != 1 || st.Restarts != 1 || st.Target != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCrashSchedulerSeededTarget: a negative target index draws
// deterministically from the seed.
func TestCrashSchedulerSeededTarget(t *testing.T) {
	targets := make([]faults.CrashTarget, 8)
	for i := range targets {
		targets[i] = faults.TargetFuncs{
			KillFn:    func() error { return nil },
			RestartFn: func() error { return nil },
		}
	}
	a := faults.NewCrashScheduler(faults.CrashPlan{Seed: 7, Target: -1}, targets)
	b := faults.NewCrashScheduler(faults.CrashPlan{Seed: 7, Target: -1}, targets)
	if a.Target() != b.Target() {
		t.Fatalf("same seed drew %d and %d", a.Target(), b.Target())
	}
	c := faults.NewCrashScheduler(faults.CrashPlan{Seed: 8, Target: -1}, targets)
	_ = c.Target() // any index is valid; just ensure it is in range
	if c.Target() < 0 || c.Target() >= len(targets) {
		t.Fatalf("target %d out of range", c.Target())
	}
}

// TestCrashSchedulerCtxCancel: a cancelled context aborts the schedule
// before the kill fires.
func TestCrashSchedulerCtxCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	killed := false
	cs := faults.NewCrashScheduler(faults.CrashPlan{
		Target: 0,
		After:  time.Hour,
		Clock:  clock.NewReal(),
	}, []faults.CrashTarget{faults.TargetFuncs{
		KillFn:    func() error { killed = true; return nil },
		RestartFn: func() error { return nil },
	}})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := cs.Run(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if killed {
		t.Fatal("kill fired despite cancelled context")
	}
	if st := cs.Stats(); st.Crashes != 0 || st.Restarts != 0 {
		t.Fatalf("stats = %+v, want zero transitions", st)
	}
}
