package faults

import (
	"context"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/netsim"
	"repro/internal/rng"
)

// Partition fault injection: seeded link cuts against a netsim.Partitions
// registry, mirroring the crash side of this package — CrashScheduler kills
// processes, PartitionScheduler kills links. Both are deterministic under a
// seed so a chaos soak failure replays exactly.

// PartitionPlan schedules one cut/heal cycle against a set of candidate
// links.
type PartitionPlan struct {
	// Seed drives link selection when Link is negative.
	Seed uint64
	// Link picks which candidate link to cut (index into the links slice).
	// Negative draws one uniformly from the seed — deterministic for a
	// fixed (seed, candidate count).
	Link int
	// After is how long the scheduler waits before the cut.
	After time.Duration
	// Duration is how long the link stays cut before healing. Zero heals
	// immediately.
	Duration time.Duration
	// Symmetric cuts both directions. The default (false) is the
	// asymmetric failure real routing produces: From→To goes dark while
	// To→From still delivers.
	Symmetric bool
	// Clock paces the schedule; nil means the real clock.
	Clock clock.Clock
}

// PartitionStats report what a scheduler run did.
type PartitionStats struct {
	// Link is the candidate index that was cut.
	Link int
	// Cuts and Heals count completed transitions (0 or 1 each; the
	// schedule is one cycle — loop it for repeated partitions).
	Cuts  int
	Heals int
}

// PartitionScheduler executes a PartitionPlan: wait, cut, wait, heal.
// Deterministic given (plan, candidates): the only randomness is the seeded
// link draw.
type PartitionScheduler struct {
	plan       PartitionPlan
	parts      *netsim.Partitions
	candidates []netsim.Link
	link       int

	cuts  atomic.Int64
	heals atomic.Int64
}

// NewPartitionScheduler builds a scheduler; the link index is drawn (or
// validated) eagerly so tests can inspect it before Run.
func NewPartitionScheduler(plan PartitionPlan, parts *netsim.Partitions, candidates []netsim.Link) *PartitionScheduler {
	if plan.Clock == nil {
		plan.Clock = clock.NewReal()
	}
	idx := plan.Link
	if idx < 0 || idx >= len(candidates) {
		idx = 0
		if len(candidates) > 0 {
			idx = int(rng.New(plan.Seed).Uint64n(uint64(len(candidates))))
		}
	}
	return &PartitionScheduler{plan: plan, parts: parts, candidates: candidates, link: idx}
}

// Link returns the candidate link the plan will cut.
func (ps *PartitionScheduler) Link() netsim.Link {
	if len(ps.candidates) == 0 {
		return netsim.Link{}
	}
	return ps.candidates[ps.link]
}

// Stats snapshots the completed transitions.
func (ps *PartitionScheduler) Stats() PartitionStats {
	return PartitionStats{
		Link:  ps.link,
		Cuts:  int(ps.cuts.Load()),
		Heals: int(ps.heals.Load()),
	}
}

// Run executes the plan, returning the first ctx error. It blocks for the
// full schedule; chaos tests run it in a goroutine alongside the workload.
// The heal is unconditional once the cut happened, so a ctx cancellation
// mid-partition does not leave the link dead for later tests sharing the
// registry.
func (ps *PartitionScheduler) Run(ctx context.Context) error {
	if len(ps.candidates) == 0 || ps.parts == nil {
		return nil
	}
	l := ps.candidates[ps.link]
	if err := ps.plan.Clock.Sleep(ctx, ps.plan.After); err != nil {
		return err
	}
	if ps.plan.Symmetric {
		ps.parts.CutBoth(l.From, l.To)
	} else {
		ps.parts.Cut(l.From, l.To)
	}
	ps.cuts.Add(1)
	err := ps.plan.Clock.Sleep(ctx, ps.plan.Duration)
	ps.parts.HealBoth(l.From, l.To)
	ps.heals.Add(1)
	return err
}

// partitionRoundTripper fails requests crossing a cut link.
type partitionRoundTripper struct {
	parts    *netsim.Partitions
	from, to string
	next     http.RoundTripper
}

// PartitionTransport wraps next (nil means http.DefaultTransport) so
// requests fail fast with an error wrapping both netsim.ErrPartitioned and
// ErrInjected while the from→to link — or the to→from return path, which
// an HTTP response needs just as much — is cut. Components tag their
// clients with their own role/node names, so one registry partitions the
// whole topology.
func PartitionTransport(parts *netsim.Partitions, from, to string, next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &partitionRoundTripper{parts: parts, from: from, to: to, next: next}
}

// RoundTrip implements http.RoundTripper.
func (t *partitionRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if t.parts.IsCut(t.from, t.to) || t.parts.IsCut(t.to, t.from) {
		return nil, fmt.Errorf("faults: %s -> %s: %w: %w",
			t.from, t.to, netsim.ErrPartitioned, ErrInjected)
	}
	return t.next.RoundTrip(req)
}
