package faults_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/netsim"
	"repro/internal/testutil"
)

// TestPartitionSchedulerRunsPlan: wait, cut, wait, heal against the planned
// link — asymmetric by default, symmetric on request.
func TestPartitionSchedulerRunsPlan(t *testing.T) {
	testutil.CheckGoroutines(t)
	parts := netsim.NewPartitions()
	links := []netsim.Link{
		{From: "control", To: "edge"},
		{From: "control", To: "origin"},
	}
	ps := faults.NewPartitionScheduler(faults.PartitionPlan{
		Link:     1,
		After:    time.Millisecond,
		Duration: 50 * time.Millisecond,
	}, parts, links)
	if ps.Link() != links[1] {
		t.Fatalf("link = %v, want %v", ps.Link(), links[1])
	}

	done := make(chan error, 1)
	go func() { done <- ps.Run(context.Background()) }()

	// Mid-schedule the link must be cut — and only the planned direction.
	deadline := time.Now().Add(5 * time.Second)
	for !parts.IsCut("control", "origin") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !parts.IsCut("control", "origin") {
		t.Fatal("link never cut")
	}
	if parts.IsCut("origin", "control") {
		t.Fatal("asymmetric plan cut the reverse direction")
	}
	if parts.IsCut("control", "edge") {
		t.Fatal("unplanned link cut")
	}

	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if parts.IsCut("control", "origin") {
		t.Fatal("link still cut after the schedule completed")
	}
	st := ps.Stats()
	if st.Cuts != 1 || st.Heals != 1 || st.Link != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestPartitionSchedulerSeededLink: a negative link index draws
// deterministically from the seed — same seed, same link.
func TestPartitionSchedulerSeededLink(t *testing.T) {
	links := []netsim.Link{
		{From: "viewer", To: "control"},
		{From: "control", To: "edge"},
		{From: "control", To: "origin"},
		{From: "edge", To: "origin"},
	}
	pick := func(seed uint64) netsim.Link {
		ps := faults.NewPartitionScheduler(faults.PartitionPlan{Seed: seed, Link: -1},
			netsim.NewPartitions(), links)
		return ps.Link()
	}
	for seed := uint64(0); seed < 10; seed++ {
		if pick(seed) != pick(seed) {
			t.Fatalf("seed %d drew different links across runs", seed)
		}
	}
	distinct := map[netsim.Link]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		distinct[pick(seed)] = true
	}
	if len(distinct) < 2 {
		t.Fatal("32 seeds all drew the same link")
	}
}

// TestPartitionSchedulerHealsOnCancel: cancelling mid-partition must still
// heal the link, so a shared registry is never left broken.
func TestPartitionSchedulerHealsOnCancel(t *testing.T) {
	testutil.CheckGoroutines(t)
	parts := netsim.NewPartitions()
	links := []netsim.Link{{From: "control", To: "edge"}}
	ps := faults.NewPartitionScheduler(faults.PartitionPlan{
		Link:      0,
		Duration:  time.Hour,
		Symmetric: true,
	}, parts, links)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- ps.Run(ctx) }()
	deadline := time.Now().Add(5 * time.Second)
	for !parts.IsCut("control", "edge") && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if !parts.IsCut("edge", "control") {
		t.Fatal("symmetric plan did not cut both directions")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if parts.IsCut("control", "edge") || parts.IsCut("edge", "control") {
		t.Fatal("cancelled run left the link cut")
	}
}

// TestPartitionTransportFailsFast: requests across a cut link fail with
// ErrPartitioned/ErrInjected without reaching the wire — in either
// direction, since an HTTP exchange needs both.
func TestPartitionTransportFailsFast(t *testing.T) {
	testutil.CheckGoroutines(t)
	var served int
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		served++
	}))
	defer srv.Close()

	parts := netsim.NewPartitions()
	client := &http.Client{Transport: faults.PartitionTransport(parts, "viewer", "control", nil)}

	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("healthy link: %v", err)
	}
	parts.Cut("viewer", "control")
	if _, err := client.Get(srv.URL); !errors.Is(err, netsim.ErrPartitioned) || !errors.Is(err, faults.ErrInjected) {
		t.Fatalf("cut link err = %v, want ErrPartitioned wrapping ErrInjected", err)
	}
	parts.Heal("viewer", "control")
	// The return path alone being cut also kills the exchange.
	parts.Cut("control", "viewer")
	if _, err := client.Get(srv.URL); !errors.Is(err, netsim.ErrPartitioned) {
		t.Fatalf("cut return path err = %v, want ErrPartitioned", err)
	}
	parts.HealAll()
	if _, err := client.Get(srv.URL); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	if served != 2 {
		t.Fatalf("served = %d requests, want 2 (partitioned calls must not reach the wire)", served)
	}
}
