package faults

import (
	"context"
	"fmt"

	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/resilience"
)

// faultyStore injects faults in front of an hls.Store — the origin (or
// gateway edge) as seen by a pulling edge.
type faultyStore struct {
	inj  *Injector
	next hls.Store
}

// Store wraps next so every ChunkList/Chunk call may fail with ErrInjected
// or be delayed by a latency spike, per the injector's rates.
func (i *Injector) Store(next hls.Store) hls.Store {
	return &faultyStore{inj: i, next: next}
}

func (s *faultyStore) before(ctx context.Context, op string) error {
	if d := s.inj.maybeLatency(); d > 0 {
		if err := resilience.SleepCtx(ctx, d); err != nil {
			return err
		}
	}
	if s.inj.shouldError() {
		return fmt.Errorf("faults: %s: %w", op, ErrInjected)
	}
	return nil
}

// ChunkList implements hls.Store.
func (s *faultyStore) ChunkList(ctx context.Context, broadcastID string) (*media.ChunkList, error) {
	if err := s.before(ctx, "chunklist "+broadcastID); err != nil {
		return nil, err
	}
	return s.next.ChunkList(ctx, broadcastID)
}

// Chunk implements hls.Store.
func (s *faultyStore) Chunk(ctx context.Context, broadcastID string, seq uint64) (*media.Chunk, error) {
	if err := s.before(ctx, fmt.Sprintf("chunk %s/%d", broadcastID, seq)); err != nil {
		return nil, err
	}
	return s.next.Chunk(ctx, broadcastID, seq)
}
