package faults

import (
	"context"
	"errors"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/hls"
	"repro/internal/media"
)

// memStore is a minimal hls.Store for wrapping.
type memStore struct{ calls int }

func (m *memStore) ChunkList(context.Context, string) (*media.ChunkList, error) {
	m.calls++
	return &media.ChunkList{BroadcastID: "b", Version: 1}, nil
}

func (m *memStore) Chunk(context.Context, string, uint64) (*media.Chunk, error) {
	m.calls++
	return &media.Chunk{Seq: 0}, nil
}

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ErrorRate: 0.3}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		if a.shouldError() != b.shouldError() {
			t.Fatalf("decision %d diverged between same-seed injectors", i)
		}
	}
	if a.Stats().Errors.Load() == 0 {
		t.Fatal("0.3 error rate never fired in 1000 rolls")
	}
}

func TestStoreInjectsErrors(t *testing.T) {
	ms := &memStore{}
	s := New(Config{Seed: 1, ErrorRate: 1}).Store(ms)
	if _, err := s.ChunkList(context.Background(), "b"); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if _, err := s.Chunk(context.Background(), "b", 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if ms.calls != 0 {
		t.Fatalf("inner store reached %d times despite 100%% error rate", ms.calls)
	}
}

func TestStorePassthroughAtZeroRates(t *testing.T) {
	ms := &memStore{}
	s := New(Config{Seed: 1}).Store(ms)
	cl, err := s.ChunkList(context.Background(), "b")
	if err != nil || cl.Version != 1 {
		t.Fatalf("passthrough chunklist = %+v, %v", cl, err)
	}
	if _, err := s.Chunk(context.Background(), "b", 0); err != nil {
		t.Fatal(err)
	}
	var _ hls.Store = s
}

func TestStoreLatencySpike(t *testing.T) {
	ms := &memStore{}
	inj := New(Config{Seed: 1, LatencyRate: 1, LatencyMin: 20 * time.Millisecond, LatencyMax: 30 * time.Millisecond})
	s := inj.Store(ms)
	start := time.Now()
	if _, err := s.ChunkList(context.Background(), "b"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("latency spike only %v", d)
	}
	if inj.Stats().Latencies.Load() != 1 {
		t.Fatalf("Latencies = %d", inj.Stats().Latencies.Load())
	}
	// A cancelled context interrupts the injected sleep.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.ChunkList(ctx, "b"); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled spike err = %v", err)
	}
}

func TestConnResetAndPartialRead(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	inj := New(Config{Seed: 3, PartialReadRate: 1})
	fc := inj.Conn(client)
	go server.Write([]byte("0123456789abcdef"))
	buf := make([]byte, 16)
	n, err := fc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	if n > 8 {
		t.Fatalf("partial read returned %d bytes, want ≤ 8", n)
	}
	if inj.Stats().PartialReads.Load() != 1 {
		t.Fatalf("PartialReads = %d", inj.Stats().PartialReads.Load())
	}

	// Flip to guaranteed reset: the read fails and the conn is closed.
	inj.SetConfig(Config{ResetRate: 1})
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset read err = %v", err)
	}
	if _, err := client.Write([]byte("x")); !errors.Is(err, io.ErrClosedPipe) {
		t.Fatalf("underlying conn still open after reset: %v", err)
	}
	if inj.Stats().Resets.Load() == 0 {
		t.Fatal("reset not counted")
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	inj := New(Config{Seed: 4, ResetRate: 1})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fln := inj.Listener(ln)
	defer fln.Close()
	go func() {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		c.Write([]byte("hello"))
	}()
	conn, err := fln.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Read(make([]byte, 8)); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn read err = %v, want injected reset", err)
	}
}

func TestRoundTripperInjectsAndTruncates(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, strings.Repeat("x", 1024))
	}))
	defer srv.Close()

	inj := New(Config{Seed: 5, ErrorRate: 1})
	hc := inj.Client(nil)
	if _, err := hc.Get(srv.URL); err == nil || !strings.Contains(err.Error(), "injected") {
		t.Fatalf("err = %v, want injected", err)
	}

	inj.SetConfig(Config{PartialReadRate: 1})
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := io.ReadAll(resp.Body); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated body err = %v", err)
	}

	inj.SetConfig(Config{})
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil || len(body) != 1024 {
		t.Fatalf("clean fetch = %d bytes, %v", len(body), err)
	}
}

func TestSetConfigKeepsSeed(t *testing.T) {
	inj := New(Config{Seed: 7, ErrorRate: 1})
	inj.SetConfig(Config{ErrorRate: 0})
	if got := inj.Config().Seed; got != 7 {
		t.Fatalf("seed after SetConfig = %d, want 7", got)
	}
	if inj.shouldError() {
		t.Fatal("error fired at zero rate")
	}
}

func TestRoundTripperSynthesizesOverload(t *testing.T) {
	var reached atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		reached.Add(1)
	}))
	defer srv.Close()

	inj := New(Config{Seed: 6, OverloadRate: 1, OverloadRetryAfter: 2 * time.Second})
	hc := inj.Client(nil)
	resp, err := hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Fatalf("Retry-After = %q, want %q", got, "2")
	}
	if reached.Load() != 0 {
		t.Fatalf("request reached the server despite injected overload")
	}
	if inj.Stats().Overloads.Load() != 1 || inj.Stats().Total() != 1 {
		t.Fatalf("Overloads = %d Total = %d, want 1/1",
			inj.Stats().Overloads.Load(), inj.Stats().Total())
	}

	// Dropping the rate restores passthrough.
	inj.SetConfig(Config{})
	resp, err = hc.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || reached.Load() != 1 {
		t.Fatalf("passthrough after SetConfig: status=%d reached=%d", resp.StatusCode, reached.Load())
	}
}
