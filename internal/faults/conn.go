package faults

import (
	"fmt"
	"net"
	"time"
)

// faultyConn injects resets, latency spikes, and partial reads into a raw
// connection — the RTMP upload/fan-out sockets of §5.2.
type faultyConn struct {
	net.Conn
	inj *Injector
}

// Conn wraps c with fault injection on Read and Write.
func (i *Injector) Conn(c net.Conn) net.Conn {
	return &faultyConn{Conn: c, inj: i}
}

// reset closes the underlying conn and reports the injected failure, so
// both ends observe the break like a mid-stream RST.
func (c *faultyConn) reset(op string) error {
	c.inj.stats.Resets.Add(1)
	c.Conn.Close()
	return fmt.Errorf("faults: %s: connection reset: %w", op, ErrInjected)
}

// Read implements net.Conn.
func (c *faultyConn) Read(b []byte) (int, error) {
	if d := c.inj.maybeLatency(); d > 0 {
		time.Sleep(d)
	}
	if c.inj.roll(c.inj.resetRate()) {
		return 0, c.reset("read")
	}
	if len(b) > 1 && c.inj.roll(c.inj.partialReadRate()) {
		c.inj.stats.PartialReads.Add(1)
		return c.Conn.Read(b[:len(b)/2])
	}
	return c.Conn.Read(b)
}

// Write implements net.Conn.
func (c *faultyConn) Write(b []byte) (int, error) {
	if d := c.inj.maybeLatency(); d > 0 {
		time.Sleep(d)
	}
	if c.inj.roll(c.inj.resetRate()) {
		return 0, c.reset("write")
	}
	return c.Conn.Write(b)
}

// faultyListener wraps accepted connections.
type faultyListener struct {
	net.Listener
	inj *Injector
}

// Listener wraps ln so every accepted connection carries fault injection —
// the server-side counterpart of Conn.
func (i *Injector) Listener(ln net.Listener) net.Listener {
	return &faultyListener{Listener: ln, inj: i}
}

// Accept implements net.Listener.
func (l *faultyListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}
