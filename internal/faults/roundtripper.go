package faults

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/resilience"
)

// faultyRoundTripper injects faults into an HTTP client — the viewer-side
// poll and message hops of the delivery path.
type faultyRoundTripper struct {
	inj  *Injector
	next http.RoundTripper
}

// RoundTripper wraps next (nil means http.DefaultTransport) so requests may
// fail with ErrInjected, be delayed, or have their response body truncated
// mid-transfer.
func (i *Injector) RoundTripper(next http.RoundTripper) http.RoundTripper {
	if next == nil {
		next = http.DefaultTransport
	}
	return &faultyRoundTripper{inj: i, next: next}
}

// Client returns an *http.Client whose transport carries fault injection.
func (i *Injector) Client(base *http.Client) *http.Client {
	var c http.Client
	if base != nil {
		c = *base
	}
	c.Transport = i.RoundTripper(c.Transport)
	return &c
}

// RoundTrip implements http.RoundTripper.
func (t *faultyRoundTripper) RoundTrip(req *http.Request) (*http.Response, error) {
	if d := t.inj.maybeLatency(); d > 0 {
		if err := resilience.SleepCtx(req.Context(), d); err != nil {
			return nil, err
		}
	}
	if t.inj.roll(t.inj.overloadRate()) {
		t.inj.stats.Overloads.Add(1)
		return t.overloadResponse(req), nil
	}
	if t.inj.shouldError() {
		return nil, fmt.Errorf("faults: roundtrip %s: %w", req.URL.Path, ErrInjected)
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if resp.Body != nil && t.inj.roll(t.inj.partialReadRate()) {
		t.inj.stats.PartialReads.Add(1)
		resp.Body = &truncatedBody{ReadCloser: resp.Body, remaining: 1}
	}
	return resp, nil
}

// overloadResponse synthesizes the 503 + Retry-After an overloaded edge
// sheds with, without the request reaching the wire.
func (t *faultyRoundTripper) overloadResponse(req *http.Request) *http.Response {
	secs := int(math.Ceil(t.inj.overloadRetryAfter().Seconds()))
	if secs < 1 {
		secs = 1
	}
	h := make(http.Header)
	h.Set("Retry-After", strconv.Itoa(secs))
	return &http.Response{
		Status:     "503 Service Unavailable (injected)",
		StatusCode: http.StatusServiceUnavailable,
		Proto:      "HTTP/1.1",
		ProtoMajor: 1,
		ProtoMinor: 1,
		Header:     h,
		Body:       io.NopCloser(strings.NewReader("injected overload")),
		Request:    req,
	}
}

// truncatedBody lets a bounded number of bytes through, then fails the
// read — the partial transfer a dropped edge connection produces.
type truncatedBody struct {
	io.ReadCloser
	remaining int
}

// Read implements io.Reader.
func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("faults: body truncated: %w", ErrInjected)
	}
	if len(p) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.ReadCloser.Read(p)
	b.remaining -= n
	return n, err
}
