// Package faults is a deterministic fault-injection harness for the
// delivery path. It wraps the seams the paper's traces show failing in
// production — the origin store an edge pulls from (§4.3 chunks rolling out
// of the origin window), the HTTP hops of the HLS/pubsub path (§5.3
// gateway–edge transfers), and the raw RTMP sockets (§5.2 bursty, lossy
// uploads) — and injects error returns, latency spikes, connection resets,
// and partial reads at configurable rates. All randomness draws from an
// internal/rng source, so a (seed, config) pair fully determines the fault
// schedule and chaos tests are reproducible.
package faults

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/rng"
)

// ErrInjected is the error every injected failure returns (possibly
// wrapped). Tests assert on it to distinguish injected faults from real
// bugs.
var ErrInjected = errors.New("faults: injected failure")

// Config sets the per-operation fault rates. All rates are probabilities in
// [0, 1]; zero disables that fault class.
type Config struct {
	// Seed drives the injector's rng stream.
	Seed uint64
	// ErrorRate is the probability an operation fails outright with
	// ErrInjected (an origin 5xx, a refused pull).
	ErrorRate float64
	// LatencyRate is the probability an operation is delayed by a spike
	// drawn uniformly from [LatencyMin, LatencyMax].
	LatencyRate float64
	// LatencyMin and LatencyMax bound injected latency spikes. When both
	// are zero a spiked operation sleeps 1 ms.
	LatencyMin, LatencyMax time.Duration
	// ResetRate is the per-read/write probability a wrapped connection is
	// reset (closed under the caller, like a mid-stream RST).
	ResetRate float64
	// PartialReadRate is the probability a read is truncated early —
	// a conn read returning fewer bytes, an HTTP body cut mid-transfer.
	PartialReadRate float64
	// OverloadRate is the probability an HTTP request is answered with a
	// synthesized 503 + Retry-After instead of reaching the server — an
	// edge shedding load before the request ever lands.
	OverloadRate float64
	// OverloadRetryAfter is the Retry-After value attached to synthesized
	// 503s; zero means 1 second.
	OverloadRetryAfter time.Duration
}

// Stats count injected faults by class.
type Stats struct {
	Errors       atomic.Int64
	Latencies    atomic.Int64
	Resets       atomic.Int64
	PartialReads atomic.Int64
	Overloads    atomic.Int64
}

// Total returns the sum across classes.
func (s *Stats) Total() int64 {
	return s.Errors.Load() + s.Latencies.Load() + s.Resets.Load() +
		s.PartialReads.Load() + s.Overloads.Load()
}

// Injector decides, deterministically, which operations fail and how. One
// Injector may wrap many objects; decisions are serialized so the schedule
// depends only on the order of operations, not on which wrapper asks.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	src   *rng.Source
	stats Stats
}

// New builds an Injector seeded from cfg.Seed.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, src: rng.New(cfg.Seed)}
}

// Stats exposes the fault counters.
func (i *Injector) Stats() *Stats { return &i.stats }

// SetConfig swaps the fault rates at runtime without resetting the rng
// stream — chaos tests use it to stage scenarios (e.g. "origin fully down"
// for a window, then recovery).
func (i *Injector) SetConfig(cfg Config) {
	i.mu.Lock()
	defer i.mu.Unlock()
	seed := i.cfg.Seed
	i.cfg = cfg
	i.cfg.Seed = seed
}

// Config returns the current rates.
func (i *Injector) Config() Config {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg
}

// roll draws one uniform and reports whether a fault at the given rate
// fires.
func (i *Injector) roll(rate float64) bool {
	if rate <= 0 {
		return false
	}
	i.mu.Lock()
	hit := i.src.Bool(rate)
	i.mu.Unlock()
	return hit
}

// latencySpike draws a spike duration from the configured window.
func (i *Injector) latencySpike() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	lo, hi := i.cfg.LatencyMin, i.cfg.LatencyMax
	if hi <= lo {
		if lo > 0 {
			return lo
		}
		return time.Millisecond
	}
	return lo + time.Duration(i.src.Uint64n(uint64(hi-lo)))
}

// shouldError rolls the outright-failure class, counting a hit.
func (i *Injector) shouldError() bool {
	if i.roll(i.errorRate()) {
		i.stats.Errors.Add(1)
		return true
	}
	return false
}

// maybeLatency rolls the latency class and returns the spike to sleep (0 =
// no spike), counting a hit.
func (i *Injector) maybeLatency() time.Duration {
	if i.roll(i.latencyRate()) {
		i.stats.Latencies.Add(1)
		return i.latencySpike()
	}
	return 0
}

func (i *Injector) errorRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.ErrorRate
}

func (i *Injector) latencyRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.LatencyRate
}

func (i *Injector) resetRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.ResetRate
}

func (i *Injector) partialReadRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.PartialReadRate
}

func (i *Injector) overloadRate() float64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.cfg.OverloadRate
}

func (i *Injector) overloadRetryAfter() time.Duration {
	i.mu.Lock()
	defer i.mu.Unlock()
	if i.cfg.OverloadRetryAfter > 0 {
		return i.cfg.OverloadRetryAfter
	}
	return time.Second
}
