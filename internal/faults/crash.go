package faults

import (
	"context"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/rng"
)

// CrashTarget is one process the scheduler can kill and restart. The core
// platform adapts its origins to this interface; anything with a
// kill/restart pair fits.
type CrashTarget interface {
	// Kill crashes the process immediately.
	Kill() error
	// Restart brings the process back, recovering whatever its durable
	// state preserves.
	Restart() error
}

// CrashPlan schedules one crash/restart cycle against a fleet of targets.
type CrashPlan struct {
	// Seed drives target selection when Target is negative.
	Seed uint64
	// Target picks which fleet member to crash (index into the targets
	// slice). Negative draws one uniformly from the seed — deterministic
	// for a fixed (seed, fleet size).
	Target int
	// After is how long the scheduler waits before the crash.
	After time.Duration
	// Downtime is how long the target stays dead before Restart. Zero
	// restarts immediately.
	Downtime time.Duration
	// Corrupt, when set, runs between Kill and Restart — the hook chaos
	// tests use to damage the journal tail while the process is down,
	// simulating a torn write at the moment of the crash.
	Corrupt func(target int)
	// Clock paces the schedule; nil means the real clock.
	Clock clock.Clock
}

// CrashStats report what a scheduler run did.
type CrashStats struct {
	// Target is the fleet index that was crashed.
	Target int
	// Crashes and Restarts count completed transitions (0 or 1 each; the
	// schedule is one cycle — loop it for repeated crashes).
	Crashes  int
	Restarts int
}

// CrashScheduler executes a CrashPlan against a target fleet: wait, kill,
// optionally corrupt, wait, restart. Deterministic given (plan, fleet): the
// only randomness is the seeded target draw.
type CrashScheduler struct {
	plan    CrashPlan
	targets []CrashTarget
	target  int

	crashes  atomic.Int64
	restarts atomic.Int64
}

// NewCrashScheduler builds a scheduler; the target index is drawn (or
// validated) eagerly so tests can inspect it before Run.
func NewCrashScheduler(plan CrashPlan, targets []CrashTarget) *CrashScheduler {
	if plan.Clock == nil {
		plan.Clock = clock.NewReal()
	}
	idx := plan.Target
	if idx < 0 || idx >= len(targets) {
		idx = 0
		if len(targets) > 0 {
			idx = int(rng.New(plan.Seed).Uint64n(uint64(len(targets))))
		}
	}
	return &CrashScheduler{plan: plan, targets: targets, target: idx}
}

// Target returns the fleet index the plan will crash.
func (cs *CrashScheduler) Target() int { return cs.target }

// Stats snapshots the completed transitions.
func (cs *CrashScheduler) Stats() CrashStats {
	return CrashStats{
		Target:   cs.target,
		Crashes:  int(cs.crashes.Load()),
		Restarts: int(cs.restarts.Load()),
	}
}

// Run executes the plan, returning the first target error or ctx error. It
// blocks for the full schedule; chaos tests run it in a goroutine alongside
// the workload.
func (cs *CrashScheduler) Run(ctx context.Context) error {
	if len(cs.targets) == 0 {
		return nil
	}
	t := cs.targets[cs.target]
	if err := cs.plan.Clock.Sleep(ctx, cs.plan.After); err != nil {
		return err
	}
	if err := t.Kill(); err != nil {
		return err
	}
	cs.crashes.Add(1)
	if cs.plan.Corrupt != nil {
		cs.plan.Corrupt(cs.target)
	}
	if err := cs.plan.Clock.Sleep(ctx, cs.plan.Downtime); err != nil {
		return err
	}
	if err := t.Restart(); err != nil {
		return err
	}
	cs.restarts.Add(1)
	return nil
}

// TargetFuncs adapts a kill/restart function pair to CrashTarget.
type TargetFuncs struct {
	KillFn    func() error
	RestartFn func() error
}

// Kill implements CrashTarget.
func (t TargetFuncs) Kill() error { return t.KillFn() }

// Restart implements CrashTarget.
func (t TargetFuncs) Restart() error { return t.RestartFn() }
