package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/netsim"
	"repro/internal/overlay"
	"repro/internal/rng"
	"repro/internal/security"
	"repro/internal/stats"
)

func init() {
	register("ablation_chunksize", "Chunk size vs HLS delay and request load (§5.2)", runAblationChunkSize)
	register("ablation_pollinterval", "Poll interval vs polling delay and request rate (§5.2)", runAblationPollInterval)
	register("ablation_gateway", "Gateway relay vs direct origin pull (§5.3)", runAblationGateway)
	register("ablation_rtmpcap", "RTMP viewer cap vs interactivity and origin load (§4.1)", runAblationRTMPCap)
	register("ablation_signature", "Signature defense cost (§7.2)", runAblationSignature)
	register("ablation_overlay", "Overlay multicast tree vs RTMP/HLS (§8)", runAblationOverlay)
}

func runAblationChunkSize(cfg Config) (*Result, error) {
	// §5.2: chunk size trades chunking delay against server load. The
	// client poll interval tracks the chunk duration (Periscope: 2.8 s
	// polls for 3 s chunks), so smaller chunks mean more requests.
	sizes := []time.Duration{1500 * time.Millisecond, 3 * time.Second, 6 * time.Second, 10 * time.Second}
	n := cfg.Broadcasts / 4
	if n < 5 {
		n = 5
	}
	src := rng.New(cfg.Seed + 21)
	sf := geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	origin := geo.Nearest(sf, geo.WowzaSites())
	edge := geo.Nearest(sf, geo.FastlySites())

	t := &stats.Table{
		Title:   "Ablation: chunk size (poll interval = 0.93 × chunk)",
		Headers: []string{"Chunk", "HLS total delay", "Chunking", "Polling", "Polls/s/viewer"},
	}
	values := map[string]float64{}
	for _, size := range sizes {
		pollInterval := time.Duration(float64(size) * 0.93)
		var totals, chunkings, pollings []float64
		for b := 0; b < n; b++ {
			model := netsim.NewModel(netsim.Params{}, src.Split(fmt.Sprintf("cs%v-%d", size, b)))
			tr := delay.GenTrace(delay.TraceConfig{
				Duration: 2 * time.Minute, ChunkDuration: size,
				Broadcaster: sf, Origin: origin, Upload: netsim.WiFi,
			}, model, src.Split(fmt.Sprintf("ct%v-%d", size, b)))
			v := delay.ViewerConfig{
				Location: sf, LastMile: netsim.WiFi,
				PollInterval: pollInterval,
				PollPhase:    time.Duration(src.Float64() * float64(pollInterval)),
				PreBuffer:    3 * size,
			}
			c := delay.HLSComponents(tr, origin, delay.EdgePath{Edge: edge}, v, model)
			totals = append(totals, c.Total().Seconds())
			chunkings = append(chunkings, c.Chunking.Seconds())
			pollings = append(pollings, c.Polling.Seconds())
		}
		rate := 1 / pollInterval.Seconds()
		t.AddRow(size.String(), secs(stats.Mean(totals)), secs(stats.Mean(chunkings)),
			secs(stats.Mean(pollings)), fmt.Sprintf("%.2f", rate))
		key := fmt.Sprintf("%gs", size.Seconds())
		values["total_"+key] = stats.Mean(totals)
		values["rate_"+key] = rate
	}
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nPaper: live services all use ≈3s chunks; Apple VoD uses 10s. Bigger chunks scale better at higher delay.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

func runAblationPollInterval(cfg Config) (*Result, error) {
	intervals := []time.Duration{500 * time.Millisecond, time.Second, 2 * time.Second, 2800 * time.Millisecond, 4 * time.Second}
	means, _ := pollingStats(cfg, intervals)
	t := &stats.Table{
		Title:   "Ablation: viewer poll interval (3s chunks)",
		Headers: []string{"Interval", "Mean polling delay", "Polls/s/viewer"},
	}
	values := map[string]float64{}
	for _, iv := range intervals {
		m := stats.Mean(means[iv])
		rate := 1 / iv.Seconds()
		t.AddRow(iv.String(), secs(m), fmt.Sprintf("%.2f", rate))
		values[fmt.Sprintf("delay_%gms", float64(iv.Milliseconds()))] = m
		values[fmt.Sprintf("rate_%gms", float64(iv.Milliseconds()))] = rate
	}
	return &Result{Text: t.String(), Values: values}, nil
}

func runAblationGateway(cfg Config) (*Result, error) {
	// §5.3: is the co-located gateway relay worth its coordination cost?
	// Compare Wowza2Fastly to a far edge with and without the relay.
	n := cfg.Broadcasts / 2
	if n < 10 {
		n = 10
	}
	src := rng.New(cfg.Seed + 23)
	origin := geo.WowzaSites()[0] // Ashburn
	far := geo.Datacenter{ID: "fastly-tokyo", Provider: geo.Fastly,
		Location: geo.Location{City: "Tokyo", Continent: geo.Asia, Lat: 35.68, Lon: 139.69}}
	gw := gatewayOf(origin)

	measure := func(useGW bool, b int) float64 {
		model := netsim.NewModel(netsim.Params{}, src.Split(fmt.Sprintf("gw%v-%d", useGW, b)))
		tr := delay.GenTrace(delay.TraceConfig{
			Duration: 90 * time.Second, Broadcaster: origin.Location,
			Origin: origin, Upload: netsim.WiFi,
		}, model, src.Split(fmt.Sprintf("gt%v-%d", useGW, b)))
		path := delay.EdgePath{Edge: far}
		if useGW {
			path.Gateway = gw
			path.GatewayOverhead = delay.DefaultGatewayOverhead
		}
		edgeAt := delay.EdgeArrivals(tr, origin, path, model)
		var sum float64
		for i := range edgeAt {
			sum += edgeAt[i].Sub(tr.Chunks[i].ReadyAt).Seconds()
		}
		return sum / float64(len(edgeAt))
	}
	var withGW, direct []float64
	for b := 0; b < n; b++ {
		withGW = append(withGW, measure(true, b))
		direct = append(direct, measure(false, b))
	}
	t := &stats.Table{
		Title:   "Ablation: gateway relay vs direct pull (Ashburn origin → Tokyo edge)",
		Headers: []string{"Path", "Mean Wowza2Fastly"},
	}
	t.AddRow("via co-located gateway", secs(stats.Mean(withGW)))
	t.AddRow("direct origin pull", secs(stats.Mean(direct)))
	return &Result{
		Text: t.String() + "\nThe relay adds coordination latency per chunk but offloads the origin's WAN fan-out to its gateway.\n",
		Values: map[string]float64{
			"gateway_mean": stats.Mean(withGW),
			"direct_mean":  stats.Mean(direct),
			"penalty":      stats.Mean(withGW) - stats.Mean(direct),
		},
	}, nil
}

func runAblationRTMPCap(cfg Config) (*Result, error) {
	// §4.1: the RTMP cap trades interactivity (how many viewers get the
	// 1.4 s path) against origin fan-out cost (25 push messages per
	// viewer per second vs ~0.36 polls/s on HLS, amortized at edges).
	caps := []int{0, 100, 200, 1 << 30}
	audience := []int{50, 500, 5000}
	const rtmpMsgsPerSec = 25.0 // one push per 40 ms frame
	const hlsPollsPerSec = 1 / 2.8

	t := &stats.Table{
		Title:   "Ablation: RTMP viewer cap",
		Headers: []string{"Cap", "Audience", "Low-latency viewers", "Origin msgs/s", "Edge polls/s"},
	}
	values := map[string]float64{}
	for _, cap := range caps {
		for _, aud := range audience {
			rtmpViewers := aud
			if cap < rtmpViewers {
				rtmpViewers = cap
			}
			hlsViewers := aud - rtmpViewers
			originLoad := float64(rtmpViewers) * rtmpMsgsPerSec
			edgeLoad := float64(hlsViewers) * hlsPollsPerSec
			capLabel := fmt.Sprintf("%d", cap)
			if cap == 1<<30 {
				capLabel = "unlimited"
			}
			t.AddRow(capLabel, fmt.Sprintf("%d", aud),
				fmt.Sprintf("%d (%.0f%%)", rtmpViewers, 100*float64(rtmpViewers)/float64(aud)),
				fmt.Sprintf("%.0f", originLoad), fmt.Sprintf("%.0f", edgeLoad))
			if aud == 5000 {
				values[fmt.Sprintf("origin_load_cap_%s", capLabel)] = originLoad
			}
		}
	}
	return &Result{
		Text:   t.String() + "\nPeriscope's cap=100 keeps origin load flat at the cost of capping interactive viewers (§4.1, §8).\n",
		Values: values,
	}, nil
}

func runAblationSignature(cfg Config) (*Result, error) {
	// §7.2: per-frame Ed25519 signing cost, and the every-k-frames
	// optimization the paper suggests.
	pub, priv, err := security.GenerateKeyPair()
	if err != nil {
		return nil, err
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(cfg.Seed))
	f := enc.Next(time.Unix(0, 0))
	frameBytes := media.MarshalFrame(nil, &f)

	iters := 2000
	if cfg.Quick {
		iters = 200
	}
	//lint:allow walltime microbenchmark of real Ed25519 CPU cost; elapsed wall time IS the measurand
	start := time.Now()
	var sig []byte
	for i := 0; i < iters; i++ {
		sig = security.SignFrame(priv, frameBytes)
	}
	//lint:allow walltime microbenchmark of real Ed25519 CPU cost; elapsed wall time IS the measurand
	signNs := float64(time.Since(start).Nanoseconds()) / float64(iters)
	//lint:allow walltime microbenchmark of real Ed25519 CPU cost; elapsed wall time IS the measurand
	start = time.Now()
	for i := 0; i < iters; i++ {
		if !security.VerifyFrame(pub, frameBytes, sig) {
			return nil, fmt.Errorf("signature verification failed")
		}
	}
	//lint:allow walltime microbenchmark of real Ed25519 CPU cost; elapsed wall time IS the measurand
	verifyNs := float64(time.Since(start).Nanoseconds()) / float64(iters)

	t := &stats.Table{
		Title:   "Ablation: §7.2 signature defense cost (Ed25519)",
		Headers: []string{"Signing period", "Broadcaster cost/s", "Verifier cost/s", "Integrity granularity"},
	}
	values := map[string]float64{"sign_ns": signNs, "verify_ns": verifyNs}
	for _, k := range []int{1, 5, 25, 75} {
		fps := 25.0 / float64(k)
		t.AddRow(fmt.Sprintf("every %d frames", k),
			fmt.Sprintf("%.2fms", fps*signNs/1e6),
			fmt.Sprintf("%.2fms", fps*verifyNs/1e6),
			fmt.Sprintf("%.0fms of video", float64(k)*40))
		values[fmt.Sprintf("broadcaster_ms_per_s_k%d", k)] = fps * signNs / 1e6
	}
	return &Result{
		Text:   t.String() + "\nEven per-frame signing costs well under 1% of a phone core — the defense is lightweight, as §7.2 claims.\n",
		Values: values,
	}, nil
}

func runAblationOverlay(cfg Config) (*Result, error) {
	// §8: overlay multicast vs the RTMP/HLS status quo.
	origin := geo.WowzaSites()[0]
	tree := overlay.Build(origin, geo.FastlySites())
	model := netsim.NewModel(netsim.Params{}, rng.New(cfg.Seed+29))
	cities := geo.CityCatalog()

	audiences := []int{100, 1000, 10000}
	if cfg.Quick {
		audiences = []int{100, 1000}
	}
	t := &stats.Table{
		Title:   "Ablation: §8 overlay multicast tree vs RTMP fan-out",
		Headers: []string{"Audience", "Origin sends/frame (overlay)", "Origin sends/frame (RTMP)", "Mean overlay delivery"},
	}
	values := map[string]float64{}
	for _, aud := range audiences {
		fresh := overlay.Build(origin, geo.FastlySites())
		var paths []*overlay.Path
		var locs []geo.Location
		for i := 0; i < aud; i++ {
			loc := cities[i%len(cities)]
			paths = append(paths, fresh.Join(loc))
			locs = append(locs, loc)
		}
		var sum time.Duration
		samples := 200
		if samples > aud {
			samples = aud
		}
		for i := 0; i < samples; i++ {
			sum += fresh.DeliveryDelay(paths[i], locs[i], netsim.WiFi, 2500, model)
		}
		mean := (sum / time.Duration(samples)).Seconds()
		t.AddRow(fmt.Sprintf("%d", aud),
			fmt.Sprintf("%d", fresh.OriginFanout()),
			fmt.Sprintf("%d", aud),
			secs(mean))
		values[fmt.Sprintf("fanout_%d", aud)] = float64(fresh.OriginFanout())
		values[fmt.Sprintf("delay_%d", aud)] = mean
	}
	_ = tree
	return &Result{
		Text:   t.String() + "\nThe tree delivers at transport latency (no chunking/polling/9s buffer) with origin cost bounded by the hub count.\n",
		Values: values,
	}, nil
}
