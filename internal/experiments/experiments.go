// Package experiments regenerates every table and figure in the paper's
// evaluation from the reproduced system. Each experiment is a named Runner
// in the Registry; cmd/experiments and the repo-root benchmarks invoke them,
// and EXPERIMENTS.md records paper-vs-measured for each.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config parameterizes a run.
type Config struct {
	// Scale divides the paper's workload volumes (default 100 → 1:100).
	Scale float64
	// Seed drives all randomness.
	Seed uint64
	// Broadcasts is the trace count for the delay experiments (the paper
	// crawled 16,013; default 300 keeps a laptop run under a minute).
	Broadcasts int
	// Quick shrinks every experiment for unit tests and -short runs.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 100
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Broadcasts <= 0 {
		c.Broadcasts = 300
	}
	if c.Quick {
		if c.Scale < 2000 {
			c.Scale = 2000
		}
		if c.Broadcasts > 40 {
			c.Broadcasts = 40
		}
	}
	return c
}

// Result is one experiment's output: rendered text plus the key scalar
// metrics tests and EXPERIMENTS.md check.
type Result struct {
	ID     string
	Title  string
	Text   string
	Values map[string]float64
}

// Runner produces one table or figure.
type Runner func(cfg Config) (*Result, error)

type entry struct {
	id    string
	title string
	run   Runner
	order int
}

var registry = map[string]entry{}
var nextOrder int

func register(id, title string, run Runner) {
	registry[id] = entry{id: id, title: title, run: run, order: nextOrder}
	nextOrder++
}

// IDs returns all experiment identifiers in registration (paper) order.
func IDs() []string {
	out := make([]entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].order < out[j].order })
	ids := make([]string, len(out))
	for i, e := range out {
		ids[i] = e.id
	}
	return ids
}

// Title returns an experiment's description.
func Title(id string) string { return registry[id].title }

// Run executes one experiment by ID.
func Run(id string, cfg Config) (*Result, error) {
	e, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown id %q (have: %s)", id, strings.Join(IDs(), ", "))
	}
	res, err := e.run(cfg.withDefaults())
	if err != nil {
		return nil, fmt.Errorf("experiments: %s: %w", id, err)
	}
	res.ID = e.id
	if res.Title == "" {
		res.Title = e.title
	}
	return res, nil
}

func secs(v float64) string { return fmt.Sprintf("%.2fs", v) }
