package experiments

import "repro/internal/geo"

func auditRows() []geo.CoLocationAudit {
	return geo.AuditCoLocation(geo.WowzaSites(), geo.FastlySites())
}
