package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("sec1_interactivity", "Delayed feedback: heart misattribution and vote discounting (§1)", runInteractivity)
}

// The paper's motivation (§1): a lagging audience produces lagging feedback.
// A viewer delayed by d hearts what they see; the broadcaster, living in
// real time, attributes that heart to whatever is happening NOW — d seconds
// of content later. Similarly, a vote cast after the real-time window
// closed is discounted. This experiment quantifies both failure modes for
// the measured RTMP and HLS delay distributions.

// viewerDelay draws one viewer's end-to-end delay for a protocol, composed
// from the Fig. 11 components: the deterministic parts plus the per-viewer
// variation (polling phase, chunk phase, buffering jitter).
func viewerDelay(hls bool, c delay.Components, src *rng.Source) time.Duration {
	d := c.Total()
	if hls {
		// Chunk phase: the viewer-relevant event lands uniformly
		// inside its chunk; polling phase likewise (§5.2).
		d += time.Duration((src.Float64() - 0.5) * float64(c.Chunking))
		d += time.Duration((src.Float64() - 0.5) * 2 * float64(c.Polling))
	}
	// Residual jitter (last mile, scheduler).
	d = time.Duration(float64(d) * src.LogNormal(0, 0.08))
	if d < 0 {
		d = 0
	}
	return d
}

func runInteractivity(cfg Config) (*Result, error) {
	reps := 10
	viewers := 2000
	if cfg.Quick {
		reps, viewers = 3, 400
	}
	rtmpC, hlsC := delay.RunControlled(delay.ControlledConfig{Seed: cfg.Seed, Repetitions: reps})
	src := rng.New(cfg.Seed + 31)
	reaction := func() time.Duration { return time.Duration(src.Exp(float64(2 * time.Second))) }

	values := map[string]float64{
		"rtmp_delay": rtmpC.Total().Seconds(),
		"hls_delay":  hlsC.Total().Seconds(),
	}
	var b strings.Builder
	b.WriteString("§1 interactivity: what end-to-end delay does to feedback\n\n")

	// Heart misattribution: events change every E seconds; a heart sent
	// for the event at stream time t arrives while the broadcaster is
	// showing stream time t + d + reaction. Misattributed when that is
	// a different event.
	t1 := &stats.Table{
		Title:   "Heart misattribution rate (hearts credited to the wrong stream event)",
		Headers: []string{"Event cadence", "RTMP viewers", "HLS viewers"},
	}
	for _, cadence := range []time.Duration{5 * time.Second, 10 * time.Second, 20 * time.Second, 60 * time.Second} {
		mis := func(hls bool, c delay.Components) float64 {
			wrong := 0
			for i := 0; i < viewers; i++ {
				eventAt := time.Duration(src.Float64() * float64(cadence)) // position within the event
				lag := viewerDelay(hls, c, src) + reaction()
				if eventAt+lag >= cadence {
					wrong++
				}
			}
			return float64(wrong) / float64(viewers)
		}
		r := mis(false, rtmpC)
		h := mis(true, hlsC)
		t1.AddRow(cadence.String(), fmt.Sprintf("%.1f%%", 100*r), fmt.Sprintf("%.1f%%", 100*h))
		key := fmt.Sprintf("%ds", int(cadence.Seconds()))
		values["misattr_rtmp_"+key] = r
		values["misattr_hls_"+key] = h
	}
	b.WriteString(t1.String())

	// Vote discounting: the broadcaster opens a W-second vote; a viewer
	// sees the announcement d late, reacts, and the vote must arrive
	// (one uplink ≈ 150 ms) before the window closes.
	t2 := &stats.Table{
		Title:   "Discounted votes (cast after the real-time window closed)",
		Headers: []string{"Vote window", "RTMP viewers", "HLS viewers"},
	}
	const uplink = 150 * time.Millisecond
	for _, window := range []time.Duration{10 * time.Second, 20 * time.Second, 30 * time.Second} {
		missed := func(hls bool, c delay.Components) float64 {
			late := 0
			for i := 0; i < viewers; i++ {
				if viewerDelay(hls, c, src)+reaction()+uplink > window {
					late++
				}
			}
			return float64(late) / float64(viewers)
		}
		r := missed(false, rtmpC)
		h := missed(true, hlsC)
		t2.AddRow(window.String(), fmt.Sprintf("%.1f%%", 100*r), fmt.Sprintf("%.1f%%", 100*h))
		key := fmt.Sprintf("%ds", int(window.Seconds()))
		values["missed_rtmp_"+key] = r
		values["missed_hls_"+key] = h
	}
	b.WriteString("\n")
	b.WriteString(t2.String())
	b.WriteString("\nThe HLS audience's feedback lags a full chunk-and-buffer pipeline behind the broadcast — the paper's case for why the first ~100 (RTMP) viewers are the only ones allowed to comment.\n")
	return &Result{Text: b.String(), Values: values}, nil
}
