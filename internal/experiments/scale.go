package experiments

import (
	"context"
	"crypto/ed25519"
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/cdn"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/security"
	"repro/internal/stats"
)

func init() {
	register("fig14", "Server CPU usage for RTMP vs HLS by viewer count", runFig14)
	register("sec7", "Stream hijacking attack and signature defense", runSec7)
}

// cpuSeconds reads this process's cumulative user+system CPU time.
func cpuSeconds() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	toSec := func(tv syscall.Timeval) float64 {
		return float64(tv.Sec) + float64(tv.Usec)/1e6
	}
	return toSec(ru.Utime) + toSec(ru.Stime)
}

// measureRTMP serves nViewers over RTMP for a dur-long broadcast on
// loopback and returns consumed CPU seconds. The measurement covers the
// whole process (server + thin draining clients), mirroring the paper's
// laptop Wowza setup where the viewers ran on other machines; our client
// side is deliberately minimal so the per-frame fan-out dominates.
func measureRTMP(nViewers int, dur time.Duration, seed uint64) (float64, error) {
	srv := rtmp.NewServer(rtmp.ServerConfig{ViewerQueue: 4096})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := srv.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		return 0, err
	}
	defer srv.Close()
	addr := ln.Addr().String()

	pub, err := rtmp.Publish(ctx, addr, "bench", "tok", nil)
	if err != nil {
		return 0, err
	}
	var wg sync.WaitGroup
	for i := 0; i < nViewers; i++ {
		v, err := rtmp.Subscribe(ctx, addr, "bench", "", rtmp.ViewerOptions{Queue: 4096})
		if err != nil {
			return 0, err
		}
		wg.Add(1)
		go func(v *rtmp.Viewer) {
			defer wg.Done()
			defer v.Close()
			for range v.Frames() {
			}
		}(v)
	}

	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(seed))
	nFrames := int(dur / media.FrameDuration)
	start := cpuSeconds()
	//lint:allow walltime Fig. 14 measures real CPU seconds, so ingest must be paced in real time
	ticker := time.NewTicker(media.FrameDuration)
	defer ticker.Stop()
	for i := 0; i < nFrames; i++ {
		<-ticker.C
		//lint:allow walltime frames carry actual send time in a real-socket CPU benchmark
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			return 0, err
		}
	}
	pub.End()
	wg.Wait()
	return cpuSeconds() - start, nil
}

// measureHLS serves nViewers polling an edge over HTTP for a dur-long
// broadcast and returns consumed CPU seconds.
func measureHLS(nViewers int, dur time.Duration, seed uint64) (float64, error) {
	origin := cdn.NewOrigin(cdn.OriginConfig{
		Site:          geo.WowzaSites()[0],
		ChunkDuration: media.DefaultChunkDuration,
	})
	edge := cdn.NewEdge(cdn.EdgeConfig{
		Site:    geo.FastlySites()[0],
		Resolve: func(string) (cdn.Upstream, error) { return cdn.Upstream{Store: origin}, nil },
	})
	origin.RegisterEdge(edge)
	httpSrv := httptest.NewServer(hls.Handler("/hls", edge))
	defer httpSrv.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	src := rng.New(seed)

	// Publisher: feed frames straight into the origin ingest (the RTMP
	// ingest leg is identical for both protocols and is excluded, as the
	// paper's experiment also measured only the viewer-serving cost).
	// Split before spawning: src is not safe for concurrent use and the
	// viewer loop below keeps drawing from it.
	encSrc := src.Split("enc")
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, encSrc)
		//lint:allow walltime Fig. 14 measures real CPU seconds, so ingest must be paced in real time
		ticker := time.NewTicker(media.FrameDuration)
		defer ticker.Stop()
		nFrames := int(dur / media.FrameDuration)
		for i := 0; i < nFrames; i++ {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
			}
			//lint:allow walltime frames carry actual send time in a real-socket CPU benchmark
			f := enc.Next(time.Now())
			//lint:allow walltime ingest stamp must match the real pacing clock above
			origin.Ingest("bench", f, time.Now())
		}
	}()

	var wg sync.WaitGroup
	start := cpuSeconds()
	pollCtx, pollCancel := context.WithTimeout(ctx, dur)
	defer pollCancel()
	for i := 0; i < nViewers; i++ {
		wg.Add(1)
		phase := time.Duration(src.Float64() * float64(2800*time.Millisecond))
		go func(phase time.Duration) {
			defer wg.Done()
			client := &hls.Client{BaseURL: httpSrv.URL + "/hls"}
			//lint:allow walltime staggers real HTTP pollers in a wall-clock CPU benchmark
			time.Sleep(phase / 16) // stagger
			_ = client.Poll(pollCtx, "bench", hls.PollerConfig{Interval: 2800 * time.Millisecond})
		}(phase)
	}
	wg.Wait()
	return cpuSeconds() - start, nil
}

func runFig14(cfg Config) (*Result, error) {
	viewerCounts := []int{100, 200, 300, 400, 500}
	dur := 4 * time.Second
	if cfg.Quick {
		viewerCounts = []int{25, 75}
		dur = 1500 * time.Millisecond
	}
	fig := &stats.Figure{Title: "Figure 14: server CPU for RTMP vs HLS", XLabel: "# viewers", YLabel: "CPU seconds per streamed second"}
	values := map[string]float64{}
	var rtmpPts, hlsPts []stats.Point
	for _, n := range viewerCounts {
		r, err := measureRTMP(n, dur, cfg.Seed)
		if err != nil {
			return nil, err
		}
		h, err := measureHLS(n, dur, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rn := r / dur.Seconds() * 100 // percentage of one core
		hn := h / dur.Seconds() * 100
		rtmpPts = append(rtmpPts, stats.Point{X: float64(n), Y: rn})
		hlsPts = append(hlsPts, stats.Point{X: float64(n), Y: hn})
		values[fmt.Sprintf("rtmp_cpu_%d", n)] = rn
		values[fmt.Sprintf("hls_cpu_%d", n)] = hn
	}
	fig.Add("RTMP", rtmpPts)
	fig.Add("HLS", hlsPts)
	last := viewerCounts[len(viewerCounts)-1]
	first := viewerCounts[0]
	values["gap_at_max"] = values[fmt.Sprintf("rtmp_cpu_%d", last)] - values[fmt.Sprintf("hls_cpu_%d", last)]
	values["gap_at_min"] = values[fmt.Sprintf("rtmp_cpu_%d", first)] - values[fmt.Sprintf("hls_cpu_%d", first)]
	var b strings.Builder
	b.WriteString(fig.String())
	b.WriteString("\nPaper Fig. 14: RTMP CPU well above HLS, gap widening with viewers.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

func runSec7(cfg Config) (*Result, error) {
	const nFrames = 25
	ctx := context.Background()

	runAttack := func(signed bool) (delivered, tampered, serverDetected int, err error) {
		var auth rtmp.Auth = rtmp.AllowAll
		var priv ed25519.PrivateKey
		var pub ed25519.PublicKey
		if signed {
			p, s, kerr := security.GenerateKeyPair()
			if kerr != nil {
				return 0, 0, 0, kerr
			}
			pub, priv = p, s
			auth = staticKeyAuth{pub: pub}
		}
		srv := rtmp.NewServer(rtmp.ServerConfig{Auth: auth})
		sctx, cancel := context.WithCancel(ctx)
		defer cancel()
		ln, lerr := srv.Listen(sctx, "127.0.0.1:0")
		if lerr != nil {
			return 0, 0, 0, lerr
		}
		defer srv.Close()

		mitm := security.NewInterceptor(security.InterceptorConfig{
			Target: ln.Addr().String(), Tamper: security.BlackFrames(), TamperSigned: true,
		})
		mln, merr := mitm.Listen(sctx, "127.0.0.1:0")
		if merr != nil {
			return 0, 0, 0, merr
		}
		defer mitm.Close()

		publisher, perr := rtmp.Publish(ctx, mln.Addr().String(), "b", "tok", priv)
		if perr != nil {
			return 0, 0, 0, perr
		}
		viewer, verr := rtmp.Subscribe(ctx, ln.Addr().String(), "b", "", rtmp.ViewerOptions{PubKey: pub})
		if verr != nil {
			return 0, 0, 0, verr
		}
		defer viewer.Close()

		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(cfg.Seed))
		var sent []media.Frame
		for i := 0; i < nFrames; i++ {
			//lint:allow walltime attack demo runs over real sockets; frames carry actual send time
			f := enc.Next(time.Now())
			sent = append(sent, f)
			if err := publisher.Send(&f); err != nil {
				break
			}
		}
		publisher.End()
		var received []media.Frame
		for rf := range viewer.Frames() {
			received = append(received, rf.Frame)
		}
		return len(received), security.AuditFrames(sent, received),
			int(srv.Stats().TamperedFrames), nil
	}

	delivered, tampered, _, err := runAttack(false)
	if err != nil {
		return nil, err
	}
	defDelivered, _, detected, err := runAttack(true)
	if err != nil {
		return nil, err
	}

	var b strings.Builder
	b.WriteString("§7: stream hijacking attack and defense\n\n")
	fmt.Fprintf(&b, "Without defense: viewer received %d frames, %d silently tampered (attack succeeds).\n", delivered, tampered)
	fmt.Fprintf(&b, "With Ed25519 per-frame signatures: server detected %d tampered frames, %d reached the viewer (attack defeated).\n", detected, defDelivered)
	return &Result{
		Text: b.String(),
		Values: map[string]float64{
			"attack_tampered":   float64(tampered),
			"attack_delivered":  float64(delivered),
			"defense_detected":  float64(detected),
			"defense_delivered": float64(defDelivered),
		},
	}, nil
}

type staticKeyAuth struct{ pub ed25519.PublicKey }

func (staticKeyAuth) Authorize(string, string, string) bool { return true }
func (a staticKeyAuth) PublicKey(string) ed25519.PublicKey  { return a.pub }
