package experiments

import (
	"math"
	"testing"
)

// TestDeterministicExperiments: the simulation-backed experiments must be
// bit-reproducible under a fixed seed — the property that makes every
// number in EXPERIMENTS.md regenerable. (Wall-clock experiments like fig14
// and the throughput ablations are excluded: they measure real CPU.)
func TestDeterministicExperiments(t *testing.T) {
	deterministic := []string{
		"table1", "table2", "fig1", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig9", "fig11", "fig12", "fig13", "fig15", "fig16",
		"fig17", "ablation_chunksize", "ablation_gateway",
		"ablation_rtmpcap", "ablation_overlay", "sec1_interactivity",
		"simday",
	}
	for _, id := range deterministic {
		id := id
		t.Run(id, func(t *testing.T) {
			a, err := Run(id, Config{Quick: true, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(id, Config{Quick: true, Seed: 17})
			if err != nil {
				t.Fatal(err)
			}
			if len(a.Values) != len(b.Values) {
				t.Fatalf("value sets differ: %d vs %d", len(a.Values), len(b.Values))
			}
			for k, va := range a.Values {
				vb, ok := b.Values[k]
				if !ok {
					t.Fatalf("key %s missing on rerun", k)
				}
				if va != vb && !(math.IsNaN(va) && math.IsNaN(vb)) {
					t.Fatalf("%s: %v != %v across identical seeds", k, va, vb)
				}
			}
			if a.Text != b.Text {
				t.Fatal("rendered text differs across identical seeds")
			}
		})
	}
}

// TestSeedsChangeResults: different seeds must actually change the
// stochastic outputs (guards against a silently ignored seed).
func TestSeedsChangeResults(t *testing.T) {
	a, err := Run("fig12", Config{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig12", Config{Quick: true, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for k, va := range a.Values {
		if b.Values[k] != va {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical results: seed unused?")
	}
}
