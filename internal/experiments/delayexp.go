package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/delay"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register("fig11", "HLS/RTMP end-to-end delay breakdown", runFig11)
	register("fig12", "CDF of average polling delay with different polling intervals", runFig12)
	register("fig13", "CDF of polling delay variance with different polling intervals", runFig13)
	register("fig15", "Wowza-to-Fastly delay by datacenter distance", runFig15)
	register("fig16", "RTMP: impact of pre-buffer size on buffering delay and stalling", runFig16)
	register("fig17", "HLS: impact of pre-buffer size on buffering delay and stalling", runFig17)
}

// traceBundle generates the per-broadcast CDN traces the client-side
// simulations replay (the paper's 16,013-broadcast corpus, scaled).
type traceBundle struct {
	traces []*delay.Trace
	models []*netsim.Model
	origin geo.Datacenter
}

func genTraces(cfg Config, n int, burstyShare float64) *traceBundle {
	src := rng.New(cfg.Seed)
	sf := geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	origin := geo.Nearest(sf, geo.WowzaSites())
	tb := &traceBundle{origin: origin}
	for i := 0; i < n; i++ {
		model := netsim.NewModel(netsim.Params{}, src.Split(fmt.Sprintf("m%d", i)))
		dur := 2*time.Minute + time.Duration(src.Exp(float64(2*time.Minute)))
		if dur > 8*time.Minute {
			dur = 8 * time.Minute
		}
		tr := delay.GenTrace(delay.TraceConfig{
			Duration:    dur,
			Broadcaster: sf,
			Origin:      origin,
			Upload:      netsim.WiFi,
			Bursty:      src.Bool(burstyShare),
		}, model, src.Split(fmt.Sprintf("t%d", i)))
		tb.traces = append(tb.traces, tr)
		tb.models = append(tb.models, model)
	}
	return tb
}

func runFig11(cfg Config) (*Result, error) {
	reps := 10
	if cfg.Quick {
		reps = 3
	}
	r, h := delay.RunControlled(delay.ControlledConfig{Seed: cfg.Seed, Repetitions: reps})
	var b strings.Builder
	b.WriteString("Figure 11: HLS/RTMP end-to-end delay breakdown (mean over controlled runs)\n\n")
	row := func(name string, c delay.Components) {
		fmt.Fprintf(&b, "%-5s upload=%s chunking=%s wowza2fastly=%s polling=%s lastmile=%s buffering=%s TOTAL=%s\n",
			name, secs(c.Upload.Seconds()), secs(c.Chunking.Seconds()),
			secs(c.Wowza2Fastly.Seconds()), secs(c.Polling.Seconds()),
			secs(c.LastMile.Seconds()), secs(c.Buffering.Seconds()), secs(c.Total().Seconds()))
	}
	row("RTMP", r)
	row("HLS", h)
	b.WriteString("\nPaper: RTMP ≈1.4s total; HLS ≈11.7s with buffering 6.9s, chunking 3s, polling 1.2s, Wowza2Fastly 0.3s.\n")
	return &Result{
		Text: b.String(),
		Values: map[string]float64{
			"rtmp_total":       r.Total().Seconds(),
			"hls_total":        h.Total().Seconds(),
			"hls_buffering":    h.Buffering.Seconds(),
			"hls_chunking":     h.Chunking.Seconds(),
			"hls_polling":      h.Polling.Seconds(),
			"hls_wowza2fastly": h.Wowza2Fastly.Seconds(),
			"hls_over_rtmp":    float64(h.Total()) / float64(r.Total()),
		},
	}, nil
}

// pollingStats computes the per-broadcast mean and std-dev of polling delay
// for each interval — the underlying data of Figures 12 and 13.
func pollingStats(cfg Config, intervals []time.Duration) (means, stds map[time.Duration][]float64) {
	tb := genTraces(cfg, cfg.Broadcasts, 0)
	src := rng.New(cfg.Seed + 7)
	means = make(map[time.Duration][]float64)
	stds = make(map[time.Duration][]float64)
	for i, tr := range tb.traces {
		edge := geo.Nearest(tb.origin.Location, geo.FastlySites())
		edgeAt := delay.EdgeArrivals(tr, tb.origin, delay.EdgePath{Edge: edge}, tb.models[i])
		for _, interval := range intervals {
			phase := time.Duration(src.Float64() * float64(interval))
			seen := delay.PollObservations(edgeAt, interval, phase)
			ds := delay.PollingDelays(edgeAt, seen)
			var xs []float64
			for _, d := range ds {
				xs = append(xs, d.Seconds())
			}
			means[interval] = append(means[interval], stats.Mean(xs))
			stds[interval] = append(stds[interval], stats.StdDev(xs))
		}
	}
	return means, stds
}

var pollIntervals = []time.Duration{2 * time.Second, 3 * time.Second, 4 * time.Second}

func runFig12(cfg Config) (*Result, error) {
	means, _ := pollingStats(cfg, pollIntervals)
	fig := &stats.Figure{Title: "Figure 12: CDF of average polling delay per broadcast", XLabel: "seconds", YLabel: "CDF"}
	values := map[string]float64{}
	for _, iv := range pollIntervals {
		c := stats.NewCDF(means[iv])
		fig.Add(iv.String(), c.Points(50))
		values[fmt.Sprintf("mean_%ds", int(iv.Seconds()))] = stats.Mean(means[iv])
		values[fmt.Sprintf("spread_%ds", int(iv.Seconds()))] = stats.StdDev(means[iv])
	}
	return &Result{Text: fig.String(), Values: values}, nil
}

func runFig13(cfg Config) (*Result, error) {
	_, stds := pollingStats(cfg, pollIntervals)
	fig := &stats.Figure{Title: "Figure 13: CDF of polling delay std-dev per broadcast", XLabel: "seconds", YLabel: "CDF"}
	values := map[string]float64{}
	for _, iv := range pollIntervals {
		c := stats.NewCDF(stds[iv])
		fig.Add(iv.String(), c.Points(50))
		values[fmt.Sprintf("std_%ds", int(iv.Seconds()))] = stats.Mean(stds[iv])
	}
	return &Result{Text: fig.String(), Values: values}, nil
}

func runFig15(cfg Config) (*Result, error) {
	// Group every (Wowza, Fastly) pair by distance class, then measure
	// per-broadcast mean Wowza2Fastly delay with the crawler's 0.1 s
	// trigger polling. Non-co-located pairs route through the gateway.
	classes := map[geo.DistanceClass][][2]geo.Datacenter{}
	for _, w := range geo.WowzaSites() {
		for _, f := range geo.FastlySites() {
			cl := geo.Classify(w, f)
			classes[cl] = append(classes[cl], [2]geo.Datacenter{w, f})
		}
	}
	perClass := cfg.Broadcasts / 5
	if perClass < 5 {
		perClass = 5
	}
	src := rng.New(cfg.Seed + 11)
	fig := &stats.Figure{Title: "Figure 15: Wowza-to-Fastly delay", XLabel: "seconds", YLabel: "CDF"}
	values := map[string]float64{}
	order := []geo.DistanceClass{
		geo.ClassCoLocated, geo.ClassUnder500, geo.ClassUnder5000,
		geo.ClassUnder10000, geo.ClassOver10000,
	}
	for _, cl := range order {
		pairs := classes[cl]
		if len(pairs) == 0 {
			continue
		}
		var means []float64
		for b := 0; b < perClass; b++ {
			pair := pairs[src.Intn(len(pairs))]
			model := netsim.NewModel(netsim.Params{}, src.Split(fmt.Sprintf("f15-%d-%d", cl, b)))
			tr := delay.GenTrace(delay.TraceConfig{
				Duration:    90 * time.Second,
				Broadcaster: pair[0].Location,
				Origin:      pair[0],
				Upload:      netsim.WiFi,
			}, model, src.Split(fmt.Sprintf("t15-%d-%d", cl, b)))
			path := delay.EdgePath{Edge: pair[1]}
			if cl != geo.ClassCoLocated {
				gw := gatewayOf(pair[0])
				if gw != nil && gw.ID != pair[1].ID {
					path.Gateway = gw
					path.GatewayOverhead = delay.DefaultGatewayOverhead
				}
			}
			edgeAt := delay.EdgeArrivals(tr, pair[0], path, model)
			var sum float64
			for i := range edgeAt {
				sum += edgeAt[i].Sub(tr.Chunks[i].ReadyAt).Seconds()
			}
			means = append(means, sum/float64(len(edgeAt)))
		}
		c := stats.NewCDF(means)
		fig.Add(cl.String(), c.Points(40))
		values["median_"+classKey(cl)] = c.Quantile(0.5)
	}
	values["colocation_gap"] = values["median_under500"] - values["median_colocated"]
	return &Result{Text: fig.String(), Values: values}, nil
}

func classKey(c geo.DistanceClass) string {
	switch c {
	case geo.ClassCoLocated:
		return "colocated"
	case geo.ClassUnder500:
		return "under500"
	case geo.ClassUnder5000:
		return "under5000"
	case geo.ClassUnder10000:
		return "under10000"
	default:
		return "over10000"
	}
}

func gatewayOf(origin geo.Datacenter) *geo.Datacenter {
	for _, f := range geo.FastlySites() {
		if geo.CoLocated(f, origin) {
			f := f
			return &f
		}
	}
	return nil
}

// bufferSweep runs the Figures 16/17 simulation: stall-ratio and buffering
// delay CDFs for each pre-buffer value.
func bufferSweep(cfg Config, hls bool, preBuffers []time.Duration) (*Result, error) {
	tb := genTraces(cfg, cfg.Broadcasts, 0.10) // 10% bursty uploads (Fig. 16b tail)
	src := rng.New(cfg.Seed + 13)
	stallFig := &stats.Figure{XLabel: "stall ratio", YLabel: "CDF"}
	delayFig := &stats.Figure{XLabel: "buffering delay (s)", YLabel: "CDF"}
	values := map[string]float64{}
	sf := geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	proto := "RTMP"
	if hls {
		proto = "HLS"
	}
	stallFig.Title = fmt.Sprintf("Figure %s: %s stall ratio vs pre-buffer", figNum(hls, "a"), proto)
	delayFig.Title = fmt.Sprintf("Figure %s: %s buffering delay vs pre-buffer", figNum(hls, "b"), proto)

	// Precompute per-trace items once per protocol, then sweep P.
	items := make([][]player.Item, len(tb.traces))
	for i, tr := range tb.traces {
		v := delay.ViewerConfig{Location: sf, LastMile: netsim.WiFi,
			PollInterval: 2800 * time.Millisecond,
			PollPhase:    time.Duration(src.Float64() * float64(2800*time.Millisecond))}
		if hls {
			edge := geo.Nearest(sf, geo.FastlySites())
			// In real viewing (unlike the 0.1s crawler probe) the
			// edge pull is triggered by some other viewer's own
			// ~2.8s poll, compounding the polling beat.
			path := delay.EdgePath{
				Edge:                edge,
				TriggerPollInterval: 2800 * time.Millisecond,
				TriggerPollPhase:    time.Duration(src.Float64() * float64(2800*time.Millisecond)),
			}
			edgeAt := delay.EdgeArrivals(tr, tb.origin, path, tb.models[i])
			its, _, _ := delay.HLSItems(tr, edgeAt, v, tb.models[i])
			items[i] = its
		} else {
			its, _ := delay.RTMPItems(tr, tb.origin, v, tb.models[i])
			items[i] = its
		}
	}
	for _, p := range preBuffers {
		var stalls, delays []float64
		for i := range items {
			res := player.Simulate(items[i], player.Config{PreBuffer: p})
			stalls = append(stalls, res.StallRatio)
			delays = append(delays, res.MeanBufferingDelay.Seconds())
		}
		label := fmt.Sprintf("%gs", p.Seconds())
		stallFig.Add(label, stats.NewCDF(stalls).Points(50))
		delayFig.Add(label, stats.NewCDF(delays).Points(50))
		key := strings.ReplaceAll(label, ".", "_")
		values["stall_p"+key] = stats.Mean(stalls)
		values["delay_p"+key] = stats.Mean(delays)
	}
	return &Result{Text: stallFig.String() + "\n" + delayFig.String(), Values: values}, nil
}

func figNum(hls bool, sub string) string {
	if hls {
		return "17(" + sub + ")"
	}
	return "16(" + sub + ")"
}

func runFig16(cfg Config) (*Result, error) {
	return bufferSweep(cfg, false, []time.Duration{0, 500 * time.Millisecond, time.Second})
}

func runFig17(cfg Config) (*Result, error) {
	return bufferSweep(cfg, true, []time.Duration{0, 3 * time.Second, 6 * time.Second, 9 * time.Second})
}
