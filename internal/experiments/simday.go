package experiments

import (
	"fmt"
	"strings"

	"repro/internal/viewersim"
)

func init() {
	register("simday", "Full-day workload replay through the viewer event engine", runSimday)
}

// runSimday replays one simulated day of the paper's workload through
// internal/viewersim's sharded-timer-wheel engine: every broadcast the
// workload model draws, every viewer session, every chunk delivery. It is the
// scale counterpart to fig11 — the same Fig. 11 decomposition, but measured
// over the whole day's population instead of a fixed trace count, and cheap
// enough that -simday-scale 1 reproduces the paper's full volume.
func runSimday(cfg Config) (*Result, error) {
	sum, err := viewersim.Run(viewersim.Config{
		Seed:  cfg.Seed,
		Scale: cfg.Scale,
	})
	if err != nil {
		return nil, err
	}

	values := map[string]float64{
		"broadcasts": float64(sum.Broadcasts),
		"views":      float64(sum.Views),
		"rtmp_views": float64(sum.RTMPViews),
		"hls_views":  float64(sum.HLSViews),
		"chunks":     float64(sum.Chunks),
		"deliveries": float64(sum.Deliveries),
		"events":     float64(sum.Events),

		"rtmp_total":    sum.RTMP.Total().Seconds(),
		"hls_total":     sum.HLS.Total().Seconds(),
		"hls_chunking":  sum.HLS.Chunking.Seconds(),
		"hls_polling":   sum.HLS.Polling.Seconds(),
		"hls_buffering": sum.HLS.Buffering.Seconds(),
	}

	var b strings.Builder
	fmt.Fprintf(&b, "Simulated day at 1:%g scale (seed %d)\n\n", cfg.Scale, cfg.Seed)
	b.WriteString(sum.String())
	b.WriteString("\n\nPaper: ~200K broadcasts/day; Fig. 11 mean delays RTMP ≈0.3s, HLS ≈11.4s\n")
	fmt.Fprintf(&b, "Measured: HLS/RTMP delay ratio %.1fx over %d views\n",
		values["hls_total"]/values["rtmp_total"], sum.Views)
	return &Result{Text: b.String(), Values: values}, nil
}
