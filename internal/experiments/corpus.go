package experiments

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/social"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register("table1", "Basic statistics of the broadcast datasets", runTable1)
	register("table2", "Basic statistics of the social graphs", runTable2)
	register("fig1", "Number of daily broadcasts", runFig1)
	register("fig2", "Number of daily active users", runFig2)
	register("fig3", "CDF of broadcast length", runFig3)
	register("fig4", "Total number of viewers per broadcast", runFig4)
	register("fig5", "Total number of comments (hearts) per broadcast", runFig5)
	register("fig6", "Distribution of broadcast views and creation over users", runFig6)
	register("fig7", "Broadcaster's followers vs number of viewers", runFig7)
	register("fig9", "Wowza and Fastly server locations", runFig9)
}

// graphConfig scales the default social-graph calibration to a node count,
// keeping community size constant.
func graphConfig(nodes int, seed uint64) social.Config {
	gcfg := social.DefaultConfig()
	gcfg.Seed = seed
	if nodes < 100 {
		nodes = 100
	}
	gcfg.Nodes = nodes
	gcfg.Communities = nodes / 200
	if gcfg.Communities < 1 {
		gcfg.Communities = 1
	}
	return gcfg
}

// corpus generates the Periscope and Meerkat datasets plus the follower
// array that links Periscope broadcasts to the social graph. Meerkat's
// corpus is small even at full scale, so its scaling is capped at 1:100 to
// keep sample noise below the figures' signal.
func corpus(cfg Config) (peri, meer *workload.Dataset, graph *social.Graph) {
	pprof := workload.Periscope(cfg.Scale)
	graph = social.Generate(graphConfig(pprof.BroadcasterPool, cfg.Seed))
	peri = workload.Generate(pprof, graph.FollowerCounts(), cfg.Seed)
	meerScale := cfg.Scale
	if meerScale > 100 {
		meerScale = 100
	}
	meer = workload.Generate(workload.Meerkat(meerScale), nil, cfg.Seed+1)
	return peri, meer, graph
}

func runTable1(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	t := &stats.Table{
		Title:   fmt.Sprintf("Table 1: Basic statistics of our broadcast datasets (scale 1:%.0f)", cfg.Scale),
		Headers: []string{"App", "Days", "Broadcasts", "Broadcasters", "Total Views", "Unique Viewers"},
	}
	add := func(ds *workload.Dataset) {
		t.AddRow(ds.Profile.Name,
			fmt.Sprintf("%d", ds.Profile.Days),
			stats.FormatCount(int64(len(ds.Broadcasts))),
			stats.FormatCount(int64(ds.UniqueBroadcasters())),
			stats.FormatCount(ds.TotalViews),
			stats.FormatCount(int64(ds.UniqueViewers())))
	}
	add(peri)
	add(meer)
	t.AddRow("", "", "", "", "", "")
	t.AddRow("Periscope (paper, 1:1)", "98", "19.6M", "1.85M", "705M", "7.65M")
	t.AddRow("Meerkat (paper, 1:1)", "34", "164K", "57K", "3.8M", "183K")
	return &Result{
		Text: t.String(),
		Values: map[string]float64{
			"periscope_broadcasts":   float64(len(peri.Broadcasts)),
			"periscope_broadcasters": float64(peri.UniqueBroadcasters()),
			"periscope_views":        float64(peri.TotalViews),
			"periscope_viewers":      float64(peri.UniqueViewers()),
			"meerkat_broadcasts":     float64(len(meer.Broadcasts)),
			"meerkat_views":          float64(meer.TotalViews),
		},
	}, nil
}

func runTable2(cfg Config) (*Result, error) {
	nodes := int(12_000_000 / cfg.Scale)
	if nodes < 2000 {
		nodes = 2000
	}
	if cfg.Quick && nodes > 6000 {
		nodes = 6000
	}
	g := social.Generate(graphConfig(nodes, cfg.Seed))
	m := social.ComputeMetrics(g, social.MetricsOptions{Seed: cfg.Seed})
	return &Result{
		Text: social.Table2(m).String(),
		Values: map[string]float64{
			"nodes":         float64(m.Nodes),
			"edges":         float64(m.Edges),
			"avg_degree":    m.AvgDegree,
			"clustering":    m.Clustering,
			"avg_path":      m.AvgPath,
			"assortativity": m.Assortativity,
		},
	}, nil
}

func runFig1(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 1: # of daily broadcasts", XLabel: "day", YLabel: "observed broadcasts/day"}
	series := func(ds *workload.Dataset) []stats.Point {
		pts := make([]stats.Point, 0, len(ds.Days))
		for i, d := range ds.Days {
			pts = append(pts, stats.Point{X: float64(i), Y: float64(d.ObservedBroadcasts)})
		}
		return pts
	}
	fig.Add("Periscope", series(peri))
	fig.Add("Meerkat", series(meer))

	growth := weekRatio(peri, true)
	decline := weekRatio(meer, true)
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"periscope_growth": growth,
			"meerkat_decline":  decline,
		},
	}, nil
}

// weekRatio compares the last week's volume to the first week's.
func weekRatio(ds *workload.Dataset, observed bool) float64 {
	first, last := 0, 0
	n := len(ds.Days)
	for d := 0; d < 7 && d < n; d++ {
		a, b := ds.Days[d], ds.Days[n-1-d]
		if observed {
			first += a.Broadcasts
			last += b.Broadcasts
		}
	}
	if first == 0 {
		return 0
	}
	return float64(last) / float64(first)
}

func runFig2(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 2: # of daily active users", XLabel: "day", YLabel: "users/day"}
	for _, ds := range []*workload.Dataset{peri, meer} {
		var viewers, bcasters []stats.Point
		for i, d := range ds.Days {
			viewers = append(viewers, stats.Point{X: float64(i), Y: float64(d.ActiveViewers)})
			bcasters = append(bcasters, stats.Point{X: float64(i), Y: float64(d.ActiveBroadcasters)})
		}
		fig.Add(ds.Profile.Name+" viewers", viewers)
		fig.Add(ds.Profile.Name+" broadcasters", bcasters)
	}
	var ratios []float64
	for _, d := range peri.Days[len(peri.Days)/3:] {
		if d.ActiveBroadcasters > 0 {
			ratios = append(ratios, float64(d.ActiveViewers)/float64(d.ActiveBroadcasters))
		}
	}
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"periscope_viewer_broadcaster_ratio": stats.Mean(ratios),
		},
	}, nil
}

func runFig3(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 3: CDF of broadcast length", XLabel: "minutes", YLabel: "CDF"}
	durCDF := func(ds *workload.Dataset) *stats.CDF {
		var xs []float64
		for _, b := range ds.Broadcasts {
			xs = append(xs, b.Duration.Minutes())
		}
		return stats.NewCDF(xs)
	}
	pc, mc := durCDF(peri), durCDF(meer)
	fig.Add("Periscope", pc.Points(100))
	fig.Add("Meerkat", mc.Points(100))
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"periscope_under_10min": pc.At(10),
			"meerkat_under_10min":   mc.At(10),
		},
	}, nil
}

func runFig4(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 4: total # of viewers per broadcast", XLabel: "viewers", YLabel: "CDF"}
	viewCDF := func(ds *workload.Dataset) *stats.CDF {
		var xs []float64
		for _, b := range ds.Broadcasts {
			xs = append(xs, float64(b.Viewers))
		}
		return stats.NewCDF(xs)
	}
	pc, mc := viewCDF(peri), viewCDF(meer)
	fig.Add("Periscope", pc.Points(100))
	fig.Add("Meerkat", mc.Points(100))
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"meerkat_zero_viewer":   mc.At(0),
			"periscope_zero_viewer": pc.At(0),
			"periscope_max_viewers": pc.Quantile(1),
		},
	}, nil
}

func runFig5(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 5: total # of comments (hearts) per broadcast", XLabel: "count", YLabel: "CDF"}
	collect := func(ds *workload.Dataset, hearts bool) *stats.CDF {
		var xs []float64
		for _, b := range ds.Broadcasts {
			if hearts {
				xs = append(xs, float64(b.Hearts))
			} else {
				xs = append(xs, float64(b.Comments))
			}
		}
		return stats.NewCDF(xs)
	}
	ph := collect(peri, true)
	pcm := collect(peri, false)
	fig.Add("Periscope Heart", ph.Points(100))
	fig.Add("Periscope Comment", pcm.Points(100))
	fig.Add("Meerkat Heart", collect(meer, true).Points(100))
	fig.Add("Meerkat Comment", collect(meer, false).Points(100))
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			// Paper: ~10% of Periscope broadcasts get >1000 hearts
			// and >100 comments.
			"periscope_hearts_over_1000":  1 - ph.At(1000),
			"periscope_comments_over_100": 1 - pcm.At(100),
			"periscope_max_hearts":        ph.Quantile(1),
		},
	}, nil
}

func runFig6(cfg Config) (*Result, error) {
	peri, meer, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 6: broadcasts viewed/created per user", XLabel: "count", YLabel: "CDF"}
	activity := func(counts []int32) *stats.CDF {
		var xs []float64
		for _, c := range counts {
			if c > 0 {
				xs = append(xs, float64(c))
			}
		}
		return stats.NewCDF(xs)
	}
	pv := activity(peri.ViewsByUser)
	fig.Add("Periscope View", pv.Points(100))
	fig.Add("Periscope Create", activity(peri.CreatesByUser).Points(100))
	fig.Add("Meerkat View", activity(meer.ViewsByUser).Points(100))
	fig.Add("Meerkat Create", activity(meer.CreatesByUser).Points(100))
	// Fig. 6's anchor: the most active 15% of viewers watch ~10x the
	// median viewer — mean of the top 15% over the median.
	median := pv.Quantile(0.5)
	var xs []float64
	for _, v := range peri.ViewsByUser {
		if v > 0 {
			xs = append(xs, float64(v))
		}
	}
	sort.Float64s(xs)
	top := xs[int(float64(len(xs))*0.85):]
	ratio := math.Inf(1)
	if median > 0 && len(top) > 0 {
		var sum float64
		for _, v := range top {
			sum += v
		}
		ratio = sum / float64(len(top)) / median
	}
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"periscope_top15_vs_median_views": ratio,
		},
	}, nil
}

func runFig7(cfg Config) (*Result, error) {
	peri, _, _ := corpus(cfg)
	fig := &stats.Figure{Title: "Figure 7: broadcaster's followers vs # of viewers", XLabel: "followers", YLabel: "viewers"}
	var pts []stats.Point
	var fs, vs []float64
	for _, b := range peri.Broadcasts {
		if b.Followers > 0 && b.Viewers > 0 {
			fs = append(fs, float64(b.Followers))
			vs = append(vs, float64(b.Viewers))
			if len(pts) < 2000 {
				pts = append(pts, stats.Point{X: float64(b.Followers), Y: float64(b.Viewers)})
			}
		}
	}
	fig.Add("broadcasts", pts)
	return &Result{
		Text: fig.String(),
		Values: map[string]float64{
			"spearman_rho": stats.SpearmanRho(fs, vs),
		},
	}, nil
}

func runFig9(cfg Config) (*Result, error) {
	// Static infrastructure map: catalog + co-location audit (§4.1).
	t := &stats.Table{
		Title:   "Figure 9: Wowza and Fastly server locations (co-location audit)",
		Headers: []string{"Wowza DC", "City", "Fastly same city", "Fastly same continent"},
	}
	audits := auditRows()
	sameCity, sameCont := 0, 0
	for _, a := range audits {
		t.AddRow(a.WowzaID, a.City, yesNo(a.SameCity), yesNo(a.SameContinent))
		if a.SameCity {
			sameCity++
		}
		if a.SameContinent {
			sameCont++
		}
	}
	var b strings.Builder
	b.WriteString(t.String())
	fmt.Fprintf(&b, "\nPaper §4.1: 6/8 co-located same-city, 7/8 same-continent; exception South America.\n")
	return &Result{
		Text: b.String(),
		Values: map[string]float64{
			"same_city":      float64(sameCity),
			"same_continent": float64(sameCont),
		},
	}, nil
}

func yesNo(v bool) string {
	if v {
		return "yes"
	}
	return "no"
}
