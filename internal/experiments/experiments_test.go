package experiments

import (
	"strings"
	"testing"
)

func quickCfg() Config {
	return Config{Quick: true, Seed: 3}
}

func run(t *testing.T, id string) *Result {
	t.Helper()
	res, err := Run(id, quickCfg())
	if err != nil {
		t.Fatalf("Run(%s): %v", id, err)
	}
	if res.Text == "" {
		t.Fatalf("%s produced no output", id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
		"fig7", "fig9", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "sec7", "sec1_interactivity",
		"ablation_chunksize", "ablation_pollinterval", "ablation_gateway",
		"ablation_rtmpcap", "ablation_signature", "ablation_overlay",
		"ablation_rtmps", "simday",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
		if Title(id) == "" {
			t.Fatalf("experiment %s has no title", id)
		}
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("registry missing %s", id)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("fig99", quickCfg()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTable1Shape(t *testing.T) {
	res := run(t, "table1")
	v := res.Values
	// Quick mode is 1:2000 scale → ≈9.8K broadcasts.
	if v["periscope_broadcasts"] < 6000 || v["periscope_broadcasts"] > 15000 {
		t.Fatalf("periscope broadcasts = %v", v["periscope_broadcasts"])
	}
	if v["meerkat_broadcasts"] >= v["periscope_broadcasts"] {
		t.Fatal("Meerkat larger than Periscope")
	}
	if v["periscope_views"] < 20*v["periscope_broadcasts"] {
		t.Fatalf("views/broadcast = %v, want ≈36",
			v["periscope_views"]/v["periscope_broadcasts"])
	}
	if !strings.Contains(res.Text, "19.6M") {
		t.Fatal("paper reference row missing")
	}
}

func TestTable2Shape(t *testing.T) {
	v := run(t, "table2").Values
	if v["assortativity"] >= 0 {
		t.Fatalf("assortativity = %v, want negative", v["assortativity"])
	}
	if v["avg_degree"] < 20 || v["avg_degree"] > 60 {
		t.Fatalf("avg degree = %v", v["avg_degree"])
	}
}

func TestFig1Shape(t *testing.T) {
	v := run(t, "fig1").Values
	if v["periscope_growth"] < 2 {
		t.Fatalf("Periscope growth = %v, want ≈3x", v["periscope_growth"])
	}
	if v["meerkat_decline"] > 0.8 {
		t.Fatalf("Meerkat decline = %v, want ≈0.5", v["meerkat_decline"])
	}
}

func TestFig2Shape(t *testing.T) {
	v := run(t, "fig2").Values
	r := v["periscope_viewer_broadcaster_ratio"]
	if r < 2 || r > 30 {
		t.Fatalf("viewer:broadcaster = %v, want ≈10", r)
	}
}

func TestFig3Shape(t *testing.T) {
	v := run(t, "fig3").Values
	if v["periscope_under_10min"] < 0.75 || v["periscope_under_10min"] > 0.95 {
		t.Fatalf("P(<10min) = %v, want ≈0.85", v["periscope_under_10min"])
	}
}

func TestFig4Shape(t *testing.T) {
	v := run(t, "fig4").Values
	if v["meerkat_zero_viewer"] < 0.5 || v["meerkat_zero_viewer"] > 0.7 {
		t.Fatalf("Meerkat zero-viewer = %v, want ≈0.6", v["meerkat_zero_viewer"])
	}
	if v["periscope_zero_viewer"] > 0.05 {
		t.Fatalf("Periscope zero-viewer = %v", v["periscope_zero_viewer"])
	}
}

func TestFig5Shape(t *testing.T) {
	v := run(t, "fig5").Values
	if v["periscope_hearts_over_1000"] < 0.02 || v["periscope_hearts_over_1000"] > 0.3 {
		t.Fatalf("P(hearts>1000) = %v, want ≈0.1", v["periscope_hearts_over_1000"])
	}
}

func TestFig6Shape(t *testing.T) {
	v := run(t, "fig6").Values
	if v["periscope_top15_vs_median_views"] < 2 {
		t.Fatalf("top15/median = %v: viewer skew too weak", v["periscope_top15_vs_median_views"])
	}
}

func TestFig7Shape(t *testing.T) {
	v := run(t, "fig7").Values
	if v["spearman_rho"] < 0.2 {
		t.Fatalf("rho = %v, want clearly positive", v["spearman_rho"])
	}
}

func TestFig9Shape(t *testing.T) {
	v := run(t, "fig9").Values
	if v["same_city"] != 6 || v["same_continent"] != 7 {
		t.Fatalf("audit = %v/%v, want 6/7", v["same_city"], v["same_continent"])
	}
}

func TestFig11Shape(t *testing.T) {
	v := run(t, "fig11").Values
	if v["hls_total"] <= v["rtmp_total"] {
		t.Fatal("HLS not slower than RTMP")
	}
	if v["hls_over_rtmp"] < 4 || v["hls_over_rtmp"] > 16 {
		t.Fatalf("HLS/RTMP = %v, want ≈8", v["hls_over_rtmp"])
	}
	if v["hls_buffering"] < v["hls_chunking"] {
		t.Fatal("buffering should dominate chunking")
	}
}

func TestFig12Shape(t *testing.T) {
	v := run(t, "fig12").Values
	// Mean ≈ interval/2 for 2s and 4s.
	if v["mean_2s"] < 0.5 || v["mean_2s"] > 1.6 {
		t.Fatalf("mean@2s = %v, want ≈1", v["mean_2s"])
	}
	if v["mean_4s"] < 1.2 || v["mean_4s"] > 3.0 {
		t.Fatalf("mean@4s = %v, want ≈2", v["mean_4s"])
	}
	// 3s resonates with 3s chunks: per-broadcast means vary widely.
	if v["spread_3s"] <= v["spread_2s"] {
		t.Fatalf("spread@3s (%v) not above spread@2s (%v)", v["spread_3s"], v["spread_2s"])
	}
}

func TestFig13Shape(t *testing.T) {
	v := run(t, "fig13").Values
	for _, k := range []string{"std_2s", "std_3s", "std_4s"} {
		if v[k] <= 0 {
			t.Fatalf("%s = %v, want positive jitter", k, v[k])
		}
	}
}

func TestFig14Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("CPU measurement under -short")
	}
	v := run(t, "fig14").Values
	// RTMP must cost more than HLS at the largest audience, and the gap
	// must widen with audience size (paper Fig. 14).
	if v["gap_at_max"] <= 0 {
		t.Fatalf("RTMP-HLS gap at max viewers = %v, want positive", v["gap_at_max"])
	}
	if v["gap_at_max"] <= v["gap_at_min"] {
		t.Fatalf("gap did not widen: min=%v max=%v", v["gap_at_min"], v["gap_at_max"])
	}
}

func TestFig15Shape(t *testing.T) {
	v := run(t, "fig15").Values
	if v["median_colocated"] >= v["median_under500"] {
		t.Fatal("co-located not faster than nearby")
	}
	if v["median_under5000"] >= v["median_over10000"] {
		t.Fatal("distance ordering broken")
	}
	// The paper's >0.25s co-location gap.
	if v["colocation_gap"] < 0.2 {
		t.Fatalf("co-location gap = %v, want >0.25s", v["colocation_gap"])
	}
}

func TestFig16Shape(t *testing.T) {
	v := run(t, "fig16").Values
	if v["stall_p0s"] < v["stall_p1s"] {
		t.Fatal("pre-buffer did not reduce RTMP stalls")
	}
	if v["delay_p1s"] <= v["delay_p0s"] {
		t.Fatal("pre-buffer did not raise RTMP delay")
	}
}

func TestFig17Shape(t *testing.T) {
	v := run(t, "fig17").Values
	// §6's headline: P=6s gives similar smoothness to P=9s at much
	// lower delay.
	if v["stall_p0s"] <= v["stall_p9s"] {
		t.Fatal("pre-buffer did not reduce HLS stalls")
	}
	if v["stall_p6s"] > v["stall_p9s"]+0.02 {
		t.Fatalf("P=6 stalls (%v) much worse than P=9 (%v)", v["stall_p6s"], v["stall_p9s"])
	}
	if v["delay_p6s"] > v["delay_p9s"]*0.75 {
		t.Fatalf("P=6 delay (%v) not clearly below P=9 (%v)", v["delay_p6s"], v["delay_p9s"])
	}
}

func TestSimdayShape(t *testing.T) {
	v := run(t, "simday").Values
	// Quick mode is 1:2000 scale → ≈100 broadcasts, a few thousand views.
	if v["broadcasts"] < 50 || v["broadcasts"] > 300 {
		t.Fatalf("broadcasts = %v", v["broadcasts"])
	}
	if v["views"] < 10*v["broadcasts"] {
		t.Fatalf("views = %v, want ≈36/broadcast", v["views"])
	}
	if v["hls_total"] <= 2*v["rtmp_total"] {
		t.Fatalf("HLS (%vs) should dominate RTMP (%vs) as in Fig. 11",
			v["hls_total"], v["rtmp_total"])
	}
	if v["hls_buffering"] < v["hls_chunking"] {
		t.Fatal("buffering should dominate chunking")
	}
	if v["deliveries"] <= v["views"] {
		t.Fatalf("deliveries = %v with %v views: engine barely ran", v["deliveries"], v["views"])
	}
}

func TestSec7Shape(t *testing.T) {
	v := run(t, "sec7").Values
	if v["attack_tampered"] != v["attack_delivered"] || v["attack_tampered"] == 0 {
		t.Fatalf("attack: %v/%v tampered", v["attack_tampered"], v["attack_delivered"])
	}
	if v["defense_delivered"] != 0 {
		t.Fatalf("defense leaked %v frames", v["defense_delivered"])
	}
	if v["defense_detected"] == 0 {
		t.Fatal("defense detected nothing")
	}
}

func TestSec1InteractivityShape(t *testing.T) {
	v := run(t, "sec1_interactivity").Values
	// The paper's motivating claim: HLS delay wrecks feedback fidelity
	// far more than RTMP's.
	if v["misattr_hls_10s"] <= v["misattr_rtmp_10s"] {
		t.Fatal("HLS misattribution not above RTMP")
	}
	if v["misattr_hls_10s"] < 0.8 {
		t.Fatalf("HLS misattribution at 10s events = %v, want near-total", v["misattr_hls_10s"])
	}
	if v["missed_hls_10s"] <= v["missed_rtmp_10s"] {
		t.Fatal("HLS vote discounting not above RTMP")
	}
	// Longer cadences/windows recover fidelity monotonically.
	if v["misattr_hls_60s"] >= v["misattr_hls_10s"] {
		t.Fatal("misattribution not improving with cadence")
	}
	if v["missed_hls_30s"] >= v["missed_hls_10s"] {
		t.Fatal("vote discounting not improving with window")
	}
}

func TestAblationChunkSize(t *testing.T) {
	v := run(t, "ablation_chunksize").Values
	if v["total_1.5s"] >= v["total_10s"] {
		t.Fatal("bigger chunks should cost more delay")
	}
	if v["rate_1.5s"] <= v["rate_10s"] {
		t.Fatal("smaller chunks should cost more requests")
	}
}

func TestAblationPollInterval(t *testing.T) {
	v := run(t, "ablation_pollinterval").Values
	if v["delay_500ms"] >= v["delay_4000ms"] {
		t.Fatal("longer polls should add delay")
	}
}

func TestAblationGateway(t *testing.T) {
	v := run(t, "ablation_gateway").Values
	if v["penalty"] <= 0 {
		t.Fatalf("gateway penalty = %v, want positive", v["penalty"])
	}
}

func TestAblationRTMPCap(t *testing.T) {
	v := run(t, "ablation_rtmpcap").Values
	if v["origin_load_cap_100"] >= v["origin_load_cap_unlimited"] {
		t.Fatal("cap did not bound origin load")
	}
}

func TestAblationSignature(t *testing.T) {
	v := run(t, "ablation_signature").Values
	if v["sign_ns"] <= 0 || v["verify_ns"] <= 0 {
		t.Fatal("no signature timings")
	}
	// Per-frame signing at 25fps must stay well under one core.
	if v["broadcaster_ms_per_s_k1"] > 100 {
		t.Fatalf("signing cost = %vms/s, implausibly heavy", v["broadcaster_ms_per_s_k1"])
	}
}

func TestAblationRTMPS(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput measurement under -short")
	}
	v := run(t, "ablation_rtmps").Values
	for _, k := range []string{"ns_per_frame_plain", "ns_per_frame_tls", "ns_per_frame_signed"} {
		if v[k] <= 0 {
			t.Fatalf("%s = %v", k, v[k])
		}
	}
	// Per-frame signing must cost measurably more than plaintext; TLS
	// overhead varies with hardware so only sanity-bound it.
	if v["signed_overhead_x"] < 1.1 {
		t.Fatalf("signed overhead = %vx, want >1.1x", v["signed_overhead_x"])
	}
	if v["tls_overhead_x"] > 10 {
		t.Fatalf("TLS overhead = %vx, implausible", v["tls_overhead_x"])
	}
}

func TestAblationOverlay(t *testing.T) {
	v := run(t, "ablation_overlay").Values
	if v["fanout_1000"] > 4 {
		t.Fatalf("overlay fanout at 1000 viewers = %v, want ≤ hubs", v["fanout_1000"])
	}
	if v["delay_1000"] > 1.5 {
		t.Fatalf("overlay delay = %vs, want transport-scale", v["delay_1000"])
	}
}
