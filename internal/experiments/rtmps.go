package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/security"
	"repro/internal/stats"
)

func init() {
	register("ablation_rtmps", "Transport cost: RTMP vs RTMPS vs signed RTMP (§7.2)", runAblationRTMPS)
}

// runAblationRTMPS measures per-frame delivery cost for the three §7.2
// options: plaintext RTMP (the vulnerable status quo), RTMPS (Facebook
// Live's choice; Periscope private broadcasts), and plaintext RTMP with
// Ed25519 per-frame signatures (the paper's proposed lightweight defense).
func runAblationRTMPS(cfg Config) (*Result, error) {
	nFrames := 2000
	if cfg.Quick {
		nFrames = 400
	}
	frames := make([]media.Frame, 256)
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(cfg.Seed))
	for i := range frames {
		frames[i] = enc.Next(time.Unix(0, int64(i)*int64(media.FrameDuration)))
	}

	type variant struct {
		name   string
		tls    bool
		signed bool
	}
	variants := []variant{
		{name: "RTMP (plaintext)"},
		{name: "RTMPS (TLS)", tls: true},
		{name: "RTMP + Ed25519 signatures", signed: true},
	}

	t := &stats.Table{
		Title:   "Ablation: §7.2 transport/integrity options (publisher→server→viewer, loopback)",
		Headers: []string{"Variant", "ns/frame", "Tamper-proof", "Integrity-evident"},
	}
	values := map[string]float64{}
	for _, v := range variants {
		perFrame, err := measureVariant(v.tls, v.signed, nFrames, frames, cfg.Seed)
		if err != nil {
			return nil, err
		}
		tamper := "no"
		if v.tls {
			tamper = "yes (encrypted)"
		}
		integ := "no"
		if v.signed {
			integ = "yes (signed)"
		}
		if v.tls {
			integ = "yes (TLS MAC)"
		}
		t.AddRow(v.name, fmt.Sprintf("%.0f", perFrame), tamper, integ)
		key := "plain"
		if v.tls {
			key = "tls"
		} else if v.signed {
			key = "signed"
		}
		values["ns_per_frame_"+key] = perFrame
	}
	values["tls_overhead_x"] = values["ns_per_frame_tls"] / values["ns_per_frame_plain"]
	values["signed_overhead_x"] = values["ns_per_frame_signed"] / values["ns_per_frame_plain"]
	var b strings.Builder
	b.WriteString(t.String())
	b.WriteString("\nThe paper's 2015 rationale was that realtime TLS is too costly for phones and public fan-out. On modern\nAES-accelerated hardware the TLS overhead is in the noise here, while per-frame Ed25519 signing costs ≈2× —\nthough signing every k frames amortizes that to near zero (see ablation_signature), and unlike TLS it keeps\nthe CDN cacheable for HLS. Both defenses close the §7 hole.\n")
	return &Result{Text: b.String(), Values: values}, nil
}

func measureVariant(useTLS, signed bool, nFrames int, frames []media.Frame, seed uint64) (nsPerFrame float64, err error) {
	srv := rtmp.NewServer(rtmp.ServerConfig{ViewerQueue: 1 << 15})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	defer srv.Close()

	var addr string
	var creds *security.TLSCredentials
	if useTLS {
		creds, err = security.GenerateTLS()
		if err != nil {
			return 0, err
		}
		ln, err := srv.ListenTLS(ctx, "127.0.0.1:0", creds.ServerConfig())
		if err != nil {
			return 0, err
		}
		addr = ln.Addr().String()
	} else {
		ln, err := srv.Listen(ctx, "127.0.0.1:0")
		if err != nil {
			return 0, err
		}
		addr = ln.Addr().String()
	}

	var signer []byte
	if signed {
		_, priv, kerr := security.GenerateKeyPair()
		if kerr != nil {
			return 0, kerr
		}
		signer = priv
	}

	var pub *rtmp.Publisher
	var viewer *rtmp.Viewer
	if useTLS {
		cc := creds.ClientConfig()
		pub, err = rtmp.PublishTLS(ctx, addr, "bench", "tok", signer, cc)
		if err != nil {
			return 0, err
		}
		viewer, err = rtmp.SubscribeTLS(ctx, addr, "bench", "", rtmp.ViewerOptions{Queue: 1 << 15}, creds.ClientConfig())
	} else {
		pub, err = rtmp.Publish(ctx, addr, "bench", "tok", signer)
		if err != nil {
			return 0, err
		}
		viewer, err = rtmp.Subscribe(ctx, addr, "bench", "", rtmp.ViewerOptions{Queue: 1 << 15})
	}
	if err != nil {
		return 0, err
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer viewer.Close()
		for range viewer.Frames() {
		}
	}()

	//lint:allow walltime measures real TLS-vs-plaintext throughput over real sockets; wall time IS the measurand
	start := time.Now()
	for i := 0; i < nFrames; i++ {
		if err := pub.Send(&frames[i%len(frames)]); err != nil {
			return 0, err
		}
	}
	pub.End()
	wg.Wait()
	//lint:allow walltime measures real TLS-vs-plaintext throughput over real sockets; wall time IS the measurand
	return float64(time.Since(start).Nanoseconds()) / float64(nFrames), nil
}
