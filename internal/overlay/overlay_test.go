package overlay

import (
	"testing"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/rng"

	"repro/internal/testutil"
)

func buildDefault() *Tree {
	origin := geo.WowzaSites()[0] // Ashburn
	return Build(origin, geo.FastlySites())
}

func TestBuildStructure(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := buildDefault()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// Fastly's 23 POPs span 4 continents → 4 hubs.
	if len(tr.Hubs) != 4 {
		t.Fatalf("hubs = %d, want 4", len(tr.Hubs))
	}
	if len(tr.Leaves) != 23 {
		t.Fatalf("leaves = %d, want 23", len(tr.Leaves))
	}
}

func TestJoinInstallsPath(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := buildDefault()
	tokyo := geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69}
	p := tr.Join(tokyo)
	if p.Leaf.Site.ID != "fastly-tokyo" {
		t.Fatalf("leaf = %s", p.Leaf.Site.ID)
	}
	if p.Hops() < 1 || p.Hops() > 2 {
		t.Fatalf("hops = %d, want 1–2 (leaf→hub→root)", p.Hops())
	}
	if tr.OriginFanout() != 1 {
		t.Fatalf("origin fanout = %d, want 1", tr.OriginFanout())
	}
}

func TestOriginFanoutBoundedByHubs(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := buildDefault()
	cities := geo.CityCatalog()
	// 10,000 viewers across the globe.
	for i := 0; i < 10_000; i++ {
		tr.Join(cities[i%len(cities)])
	}
	if got := tr.OriginFanout(); got > len(tr.Hubs) {
		t.Fatalf("origin fanout = %d with 10k viewers, want ≤ %d hubs", got, len(tr.Hubs))
	}
	// This is the §8 point: RTMP would need 10,000 origin sends/frame.
}

func TestLeavePrunes(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := buildDefault()
	tokyo := geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69}
	p1 := tr.Join(tokyo)
	p2 := tr.Join(tokyo)
	if tr.OriginFanout() != 1 {
		t.Fatalf("fanout = %d", tr.OriginFanout())
	}
	tr.Leave(p1)
	if tr.OriginFanout() != 1 {
		t.Fatal("fanout dropped while a subscriber remains")
	}
	tr.Leave(p2)
	if tr.OriginFanout() != 0 {
		t.Fatalf("fanout = %d after all left, want 0", tr.OriginFanout())
	}
	if p1.Leaf.Viewers() != 0 {
		t.Fatal("viewer count not pruned")
	}
}

func TestTotalForwardsCountsEdgesAndViewers(t *testing.T) {
	testutil.CheckGoroutines(t)
	tr := buildDefault()
	tokyo := geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69}
	ny := geo.Location{City: "New York", Lat: 40.71, Lon: -74.01}
	tr.Join(tokyo)
	tr.Join(tokyo)
	tr.Join(ny)
	// Tokyo leaf doubles as Asia hub or is under it; either way:
	// forwarding edges ≤ 2 (root→hubs) + ≤2 (hub→leaf) + 3 viewers.
	got := tr.TotalForwards()
	if got < 5 || got > 7 {
		t.Fatalf("total forwards = %d, want 5–7", got)
	}
}

func TestDeliveryDelayBetweenRTMPAndHLS(t *testing.T) {
	testutil.CheckGoroutines(t)
	// §8's promise: near-RTMP latency at HLS-like origin cost. The tree
	// delay must be way below HLS's ~11.7 s and in the same order as
	// RTMP's transport delay.
	tr := buildDefault()
	model := netsim.NewModel(netsim.Params{}, rng.New(1))
	tokyo := geo.Location{City: "Tokyo", Lat: 35.68, Lon: 139.69}
	p := tr.Join(tokyo)
	var sum time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		sum += tr.DeliveryDelay(p, tokyo, netsim.WiFi, 2500, model)
	}
	mean := sum / n
	// Ashburn→Tokyo spans the planet: expect roughly 100–500 ms, far
	// below chunking+polling+buffering.
	if mean < 50*time.Millisecond || mean > time.Second {
		t.Fatalf("mean overlay delay = %v, want transport-dominated", mean)
	}
}

func TestBuildSingleContinent(t *testing.T) {
	testutil.CheckGoroutines(t)
	w := geo.WowzaSites()[0]
	var na []geo.Datacenter
	for _, s := range geo.FastlySites() {
		if s.Location.Continent == geo.NorthAmerica {
			na = append(na, s)
		}
	}
	tr := Build(w, na)
	if len(tr.Hubs) != 1 {
		t.Fatalf("hubs = %d", len(tr.Hubs))
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}
