package overlay

import (
	"testing"
	"testing/quick"

	"repro/internal/geo"

	"repro/internal/testutil"
)

// Property: after any sequence of joins and leaves, (a) origin fan-out never
// exceeds the hub count, (b) total forwards equals active tree edges plus
// attached viewers, and (c) leaving everyone returns the tree to zero state.
func TestJoinLeaveInvariantsProperty(t *testing.T) {
	testutil.CheckGoroutines(t)
	cities := geo.CityCatalog()
	f := func(joinIdx []uint8, leaveOrder []uint8) bool {
		tr := Build(geo.WowzaSites()[0], geo.FastlySites())
		var paths []*Path
		for _, j := range joinIdx {
			p := tr.Join(cities[int(j)%len(cities)])
			paths = append(paths, p)
			if tr.OriginFanout() > len(tr.Hubs) {
				return false
			}
		}
		if err := tr.Validate(); err != nil {
			return false
		}
		// Leave in an arbitrary order (duplicates skipped).
		left := make(map[int]bool)
		for _, l := range leaveOrder {
			i := int(l) % max(len(paths), 1)
			if len(paths) == 0 || left[i] {
				continue
			}
			left[i] = true
			tr.Leave(paths[i])
		}
		for i, p := range paths {
			if !left[i] {
				tr.Leave(p)
			}
		}
		return tr.OriginFanout() == 0 && tr.TotalForwards() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
