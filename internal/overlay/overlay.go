// Package overlay implements the alternative delivery architecture the
// paper sketches in §8: a receiver-driven overlay multicast tree (in the
// spirit of Scribe and Akamai's streaming CDN) layered over geographically
// clustered forwarding servers. A viewer's join request travels from its
// local leaf server up the hierarchy, installing a reverse forwarding path;
// once built, video frames flow down the tree with no per-viewer state at
// the origin and no periodic polling — the paper's proposed escape from the
// RTMP-cost vs HLS-delay dilemma.
//
// The tree here is three-tiered: origin root → one hub per continent →
// leaf servers (the edge sites) → viewers.
package overlay

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/geo"
	"repro/internal/netsim"
)

// Node is one forwarding server in the tree.
type Node struct {
	Site   geo.Datacenter
	Parent *Node

	mu       sync.Mutex
	children map[*Node]int // child → active subscriptions through it
	viewers  int           // viewers attached directly to this node
}

func newNode(site geo.Datacenter, parent *Node) *Node {
	return &Node{Site: site, Parent: parent, children: make(map[*Node]int)}
}

// ActiveChildren returns how many children currently need a copy of each
// frame.
func (n *Node) ActiveChildren() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.children)
}

// Viewers returns directly attached viewer count.
func (n *Node) Viewers() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.viewers
}

// Tree is one broadcast's multicast tree.
type Tree struct {
	Root   *Node
	Hubs   []*Node
	Leaves []*Node
}

// Build constructs the hierarchy for an origin over the given leaf sites:
// one hub per continent (the leaf nearest that continent's sites' mean
// position), every leaf parented to its continent's hub, hubs parented to
// the root. Continents without leaves fall back to the root directly.
func Build(origin geo.Datacenter, leafSites []geo.Datacenter) *Tree {
	t := &Tree{Root: newNode(origin, nil)}
	byContinent := map[string][]geo.Datacenter{}
	for _, s := range leafSites {
		byContinent[s.Location.Continent] = append(byContinent[s.Location.Continent], s)
	}
	for _, sites := range byContinent {
		centroid := geo.Location{}
		for _, s := range sites {
			centroid.Lat += s.Location.Lat / float64(len(sites))
			centroid.Lon += s.Location.Lon / float64(len(sites))
		}
		hubSite := geo.Nearest(centroid, sites)
		hub := newNode(hubSite, t.Root)
		t.Hubs = append(t.Hubs, hub)
		for _, s := range sites {
			if s.ID == hubSite.ID {
				// The hub doubles as its own leaf.
				t.Leaves = append(t.Leaves, hub)
				continue
			}
			leaf := newNode(s, hub)
			t.Leaves = append(t.Leaves, leaf)
		}
	}
	return t
}

// Path is one viewer's installed reverse forwarding path.
type Path struct {
	Leaf  *Node
	nodes []*Node // leaf → … → root
}

// Hops returns the server-to-server hop count from root to leaf.
func (p *Path) Hops() int { return len(p.nodes) - 1 }

// Join attaches a viewer at loc: the request enters the nearest leaf and
// propagates rootward, installing forwarding state on each hop that lacks
// it (§8: "setting up a reverse forwarding path in the process").
func (t *Tree) Join(loc geo.Location) *Path {
	leaf := t.Leaves[0]
	best := geo.DistanceKm(loc, leaf.Site.Location)
	for _, l := range t.Leaves[1:] {
		if d := geo.DistanceKm(loc, l.Site.Location); d < best {
			leaf, best = l, d
		}
	}
	p := &Path{Leaf: leaf}
	leaf.mu.Lock()
	leaf.viewers++
	leaf.mu.Unlock()
	for n := leaf; n != nil; n = n.Parent {
		p.nodes = append(p.nodes, n)
		if n.Parent != nil {
			n.Parent.mu.Lock()
			n.Parent.children[n]++
			n.Parent.mu.Unlock()
		}
	}
	return p
}

// Leave removes a viewer, pruning forwarding state that no longer carries
// subscribers.
func (t *Tree) Leave(p *Path) {
	p.Leaf.mu.Lock()
	if p.Leaf.viewers > 0 {
		p.Leaf.viewers--
	}
	p.Leaf.mu.Unlock()
	for _, n := range p.nodes {
		if n.Parent == nil {
			continue
		}
		n.Parent.mu.Lock()
		n.Parent.children[n]--
		if n.Parent.children[n] <= 0 {
			delete(n.Parent.children, n)
		}
		n.Parent.mu.Unlock()
	}
}

// DeliveryDelay returns one frame's root→viewer latency along a path: the
// sum of jittered one-way hops plus the viewer's last mile. No chunking, no
// polling — the structural win over HLS.
func (t *Tree) DeliveryDelay(p *Path, viewerLoc geo.Location, lastMile netsim.AccessProfile, frameBytes int, model *netsim.Model) time.Duration {
	var d time.Duration
	// nodes is leaf→root; frames travel root→leaf, same hop set.
	for i := len(p.nodes) - 1; i > 0; i-- {
		d += model.OneWay(p.nodes[i].Site.Location, p.nodes[i-1].Site.Location)
	}
	d += model.OneWay(p.Leaf.Site.Location, viewerLoc)
	d += model.LastMile(lastMile, frameBytes)
	return d
}

// OriginFanout is how many copies of each frame the origin must send — the
// per-frame cost that replaces RTMP's per-viewer fan-out.
func (t *Tree) OriginFanout() int { return t.Root.ActiveChildren() }

// TotalForwards is the per-frame message count across the whole tree
// (every active parent→child edge plus every leaf→viewer delivery).
func (t *Tree) TotalForwards() int {
	total := 0
	var walk func(n *Node)
	var mu sync.Mutex
	walk = func(n *Node) {
		n.mu.Lock()
		children := make([]*Node, 0, len(n.children))
		for c := range n.children {
			children = append(children, c)
		}
		viewers := n.viewers
		n.mu.Unlock()
		mu.Lock()
		total += len(children) + viewers
		mu.Unlock()
		for _, c := range children {
			walk(c)
		}
	}
	walk(t.Root)
	return total
}

// Validate checks structural invariants; it returns an error describing the
// first violation (used by property tests).
func (t *Tree) Validate() error {
	for _, hub := range t.Hubs {
		if hub.Parent != t.Root {
			return fmt.Errorf("overlay: hub %s not parented to root", hub.Site.ID)
		}
	}
	for _, leaf := range t.Leaves {
		n := leaf
		for n.Parent != nil {
			n = n.Parent
		}
		if n != t.Root {
			return fmt.Errorf("overlay: leaf %s not rooted", leaf.Site.ID)
		}
	}
	return nil
}
