package metrics

import (
	"sync/atomic"
	"time"
)

// Canonical instrument names for the paper's end-to-end delay decomposition
// (Fig. 11): one histogram per pipeline stage, labelled by protocol or site.
// The live platform and the internal/delay harness populate the same names,
// so a /metrics scrape and an EXPERIMENTS.md figure agree by construction.
const (
	DelayUpload     = "delay_upload_seconds"      // broadcaster → ingest (§4.2)
	DelayChunking   = "delay_chunking_seconds"    // frames buffered into 3 s chunks (§4.3)
	DelayOriginEdge = "delay_origin_edge_seconds" // Wowza → Fastly pull (§4.3)
	DelayPolling    = "delay_polling_seconds"     // HLS chunklist poll gap (§4.3)
	DelayLastMile   = "delay_lastmile_seconds"    // edge → player transfer (§4.2)
	DelayBuffering  = "delay_buffering_seconds"   // player pre-buffer fill (§4.2, §6)
)

// DelayBuckets are the default histogram bounds for delay components. They
// are chosen so every quantity the paper reports lands in its own bucket:
// the sub-second Wowza→Fastly push (≈0.3 s) resolves under the 1 s line,
// the 2–2.8 s polling interval and the 3 s chunk duration straddle distinct
// buckets, the 9 s HLS pre-buffer has an exact boundary, and the ≈11.7 s
// HLS end-to-end total falls inside 9–12 s. Callers must not mutate.
var DelayBuckets = []time.Duration{
	1 * time.Millisecond,
	2 * time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2 * time.Second,
	3 * time.Second,
	4 * time.Second,
	6 * time.Second,
	9 * time.Second,
	12 * time.Second,
	20 * time.Second,
	30 * time.Second,
}

// Histogram counts duration observations into fixed buckets. Bucket i holds
// observations d with d <= bounds[i] (and greater than bounds[i-1]); an
// observation exactly on a boundary lands in that boundary's bucket. One
// extra overflow bucket holds everything above the last bound. Observe is
// lock-free and allocation-free; Snapshot is a consistent-enough read for
// monitoring (see the invariant documented there).
type Histogram struct {
	bounds []time.Duration
	counts []atomic.Int64 // len(bounds)+1; last is the overflow bucket
	count  atomic.Int64
	sum    atomic.Int64 // nanoseconds
}

func newHistogram(bounds []time.Duration) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds: append([]time.Duration(nil), bounds...),
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records d. The write order (bucket, then total count, then sum)
// pairs with Snapshot's read order so a concurrent snapshot never sees a
// total count exceeding the bucket sum.
//
//livesim:hotpath
func (h *Histogram) Observe(d time.Duration) {
	i := 0
	for i < len(h.bounds) && d > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum reports the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean reports Sum/Count using integer duration division (0 when empty) —
// the same arithmetic the delay harness historically used to average
// per-repetition components, so refactoring onto histograms preserves every
// reproduced figure bit-for-bit.
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sum.Load() / n)
}

// Bounds returns the bucket upper bounds (shared; do not mutate).
func (h *Histogram) Bounds() []time.Duration { return h.bounds }

// BucketCount is one cumulative bucket of a histogram snapshot.
type BucketCount struct {
	// Bound is the inclusive upper bound; negative means +Inf (overflow).
	Bound time.Duration
	// Count is the cumulative number of observations <= Bound.
	Count int64
}

// HistogramData is a point-in-time view of a Histogram.
type HistogramData struct {
	Count   int64
	Sum     time.Duration
	Buckets []BucketCount // ascending; last entry is the +Inf bucket
}

// Data snapshots the histogram. Under concurrent Observe calls the buckets
// may run slightly ahead of Count/Sum, never behind: Count is read before
// the buckets while writers increment their bucket first, so the +Inf
// cumulative total is always >= Count. Each individual bucket's cumulative
// count is exact for the moment it was read and non-decreasing over time.
func (h *Histogram) Data() HistogramData {
	d := HistogramData{
		Count:   h.count.Load(),
		Sum:     time.Duration(h.sum.Load()),
		Buckets: make([]BucketCount, len(h.counts)),
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		bound := time.Duration(-1)
		if i < len(h.bounds) {
			bound = h.bounds[i]
		}
		d.Buckets[i] = BucketCount{Bound: bound, Count: cum}
	}
	return d
}
