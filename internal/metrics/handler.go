package metrics

import (
	"encoding/json"
	"net/http"
)

// Handler serves the registry as structured JSON: the Snapshot shape with
// counters, gauges, and cumulative-bucket histograms. Mounted by
// core.Platform at /metrics.
func Handler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
}

// VarsHandler serves the expvar-style flat view: one JSON object mapping
// "name{label=value,...}" to a number, with histograms contributing
// .count, .sum_seconds, and .mean_seconds entries. Mounted by
// core.Platform at /debug/vars for quick `curl | jq` inspection.
func VarsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s := r.Snapshot()
		flat := make(map[string]float64)
		for _, c := range s.Counters {
			flat[SeriesName(c.Name, c.Labels)] = float64(c.Value)
		}
		for _, g := range s.Gauges {
			flat[SeriesName(g.Name, g.Labels)] = float64(g.Value)
		}
		for _, h := range s.Histograms {
			fq := SeriesName(h.Name, h.Labels)
			flat[fq+".count"] = float64(h.Count)
			flat[fq+".sum_seconds"] = h.SumSeconds
			flat[fq+".mean_seconds"] = h.MeanSeconds
		}
		w.Header().Set("Content-Type", "application/json")
		// json.Marshal sorts map keys, so the flat view is deterministic.
		b, err := json.MarshalIndent(flat, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		b = append(b, '\n')
		_, _ = w.Write(b)
	})
}
