package metrics

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestRegistryDedupByNameAndLabels(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("frames_total", L("site", "sfo"))
	b := r.Counter("frames_total", L("site", "sfo"))
	if a != b {
		t.Fatalf("same name+labels returned distinct counters")
	}
	c := r.Counter("frames_total", L("site", "iad"))
	if a == c {
		t.Fatalf("different labels returned the same counter")
	}
	// Label order must not matter.
	d := r.Counter("multi", L("a", "1"), L("b", "2"))
	e := r.Counter("multi", L("b", "2"), L("a", "1"))
	if d != e {
		t.Fatalf("label order changed instrument identity")
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x")
}

func TestHistogramBoundsMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Histogram("h", []time.Duration{time.Second})
	defer func() {
		if recover() == nil {
			t.Fatalf("re-registering a histogram with different bounds did not panic")
		}
	}()
	r.Histogram("h", []time.Duration{2 * time.Second})
}

func TestCounterConcurrentAddsSum(t *testing.T) {
	var c Counter
	const goroutines, perG = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != goroutines*perG {
		t.Fatalf("Value = %d, want %d", got, goroutines*perG)
	}
}

func TestGauge(t *testing.T) {
	var g Gauge
	g.Set(7)
	g.Add(-2)
	if got := g.Value(); got != 5 {
		t.Fatalf("Value = %d, want 5", got)
	}
}

// TestObservationsAllocFree pins the zero-alloc hot-path budget: every
// observation primitive must stay allocation-free so instruments can sit on
// the per-frame fan-out path.
func TestObservationsAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	g := r.Gauge("g")
	h := r.Histogram("h", DelayBuckets)
	if n := testing.AllocsPerRun(100, func() { c.Add(3) }); n != 0 {
		t.Errorf("Counter.Add allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { g.Set(9) }); n != 0 {
		t.Errorf("Gauge.Set allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() { h.Observe(3 * time.Second) }); n != 0 {
		t.Errorf("Histogram.Observe allocates %.1f/op, want 0", n)
	}
}

func TestGaugeFuncEvaluatedAtSnapshot(t *testing.T) {
	r := NewRegistry()
	v := int64(1)
	r.GaugeFunc("derived", func() int64 { return v })
	if got := findGauge(t, r.Snapshot(), "derived"); got != 1 {
		t.Fatalf("derived = %d, want 1", got)
	}
	v = 42
	if got := findGauge(t, r.Snapshot(), "derived"); got != 42 {
		t.Fatalf("derived = %d after update, want 42", got)
	}
}

// TestGaugeFuncMayLockRegistry guards the lock-ordering contract: a
// GaugeFunc closure that itself registers (or takes locks that lead back to
// the registry) must not deadlock, because Snapshot evaluates closures
// outside the registry lock.
func TestGaugeFuncMayLockRegistry(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("self_referential", func() int64 {
		return r.Counter("side").Value()
	})
	done := make(chan struct{})
	go func() {
		defer close(done)
		r.Snapshot()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("Snapshot deadlocked evaluating a registry-locking GaugeFunc")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", L("site", "z"))
	r.Counter("b_total", L("site", "a"))
	r.Counter("a_total")
	r.Gauge("depth")
	r.Histogram(DelayChunking, DelayBuckets)
	s := r.Snapshot()
	if len(s.Counters) != 3 || len(s.Gauges) != 1 || len(s.Histograms) != 1 {
		t.Fatalf("snapshot shape = %d/%d/%d counters/gauges/histograms", len(s.Counters), len(s.Gauges), len(s.Histograms))
	}
	for i := 1; i < len(s.Counters); i++ {
		a := seriesKey(s.Counters[i-1].Name, s.Counters[i-1].Labels)
		b := seriesKey(s.Counters[i].Name, s.Counters[i].Labels)
		if a >= b {
			t.Fatalf("counters not sorted: %q before %q", a, b)
		}
	}
}

func TestHandlerJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("rtmp_frames_in_total", L("site", "sfo")).Add(5)
	h := r.Histogram(DelayPolling, DelayBuckets, L("proto", "hls"))
	h.Observe(2 * time.Second)

	rec := httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /metrics = %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("decode /metrics: %v", err)
	}
	if len(s.Counters) != 1 || s.Counters[0].Value != 5 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if len(s.Histograms) != 1 || s.Histograms[0].Count != 1 {
		t.Fatalf("histograms = %+v", s.Histograms)
	}
	// The overflow bucket must render as +Inf and carry the full count.
	last := s.Histograms[0].Buckets[len(s.Histograms[0].Buckets)-1]
	if last.LE != "+Inf" || last.Count != 1 {
		t.Fatalf("last bucket = %+v", last)
	}

	rec = httptest.NewRecorder()
	Handler(r).ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST /metrics = %d, want 405", rec.Code)
	}
}

func TestVarsHandlerFlatView(t *testing.T) {
	r := NewRegistry()
	r.Counter("cdn_sheds_total", L("site", "iad")).Add(3)
	r.Histogram(DelayBuffering, DelayBuckets).Observe(9 * time.Second)

	rec := httptest.NewRecorder()
	VarsHandler(r).ServeHTTP(rec, httptest.NewRequest("GET", "/debug/vars", nil))
	if rec.Code != 200 {
		t.Fatalf("GET /debug/vars = %d", rec.Code)
	}
	var flat map[string]float64
	if err := json.Unmarshal(rec.Body.Bytes(), &flat); err != nil {
		t.Fatalf("decode /debug/vars: %v", err)
	}
	if flat["cdn_sheds_total{site=iad}"] != 3 {
		t.Fatalf("flat counter missing: %v", flat)
	}
	if flat[DelayBuffering+".count"] != 1 || flat[DelayBuffering+".mean_seconds"] != 9 {
		t.Fatalf("flat histogram entries wrong: %v", flat)
	}
	if !strings.Contains(rec.Header().Get("Content-Type"), "application/json") {
		t.Fatalf("Content-Type = %q", rec.Header().Get("Content-Type"))
	}
}

func findGauge(t *testing.T, s Snapshot, name string) int64 {
	t.Helper()
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q not in snapshot", name)
	return 0
}
