// Package metrics is the platform's one observability substrate: a registry
// of typed, label-aware instruments — allocation-free sharded counters,
// gauges, and fixed-bucket histograms — that every layer of the delivery
// path (rtmp, cdn, hls, pubsub, health, core) registers into instead of
// keeping bespoke counter structs. The bucket boundaries are chosen to
// resolve the paper's delay decomposition (§4.2–4.3): 3 s chunks, the 9 s
// HLS pre-buffer, and the sub-second Wowza→Fastly push all land in distinct
// buckets. The same histograms back both the live /metrics endpoint and the
// Figure 11 experiment harness, so reproduced figures and runtime telemetry
// come from one code path.
//
// Hot-path discipline: Counter.Add/Inc, Gauge.Set/Add, and
// Histogram.Observe perform zero heap allocations and take no locks (all
// state is atomic), so instruments may sit on the per-frame fan-out and
// per-poll serving paths that DESIGN.md §5a budgets. Registration is the
// only locked, allocating operation and belongs in constructors.
package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"
)

// Label is one name/value pair attached to an instrument, e.g. the edge
// site serving a counter. Labels distinguish instruments that share a name.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Instrument kinds.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// instrument is one registered entry: a name + sorted label set bound to
// exactly one of the typed instruments.
type instrument struct {
	name   string
	labels []Label // sorted by key
	kind   string

	counter *Counter
	gauge   *Gauge
	gaugeFn func() int64 // derived gauge; nil for plain gauges
	hist    *Histogram
}

// Registry holds instruments keyed by name + label set. Registering the
// same name and labels twice returns the same instrument, so components
// rebuilt against a shared registry keep accumulating into one series;
// registering a name under a different kind is a programming error and
// panics.
type Registry struct {
	mu    sync.Mutex
	byKey map[string]*instrument
	order []*instrument
}

// NewRegistry builds an empty Registry.
func NewRegistry() *Registry { return &Registry{byKey: make(map[string]*instrument)} }

// instrumentKey renders name+labels into the dedup key. Labels must already
// be sorted.
func instrumentKey(name string, labels []Label) string {
	k := name
	for _, l := range labels {
		k += "\x00" + l.Key + "\x01" + l.Value
	}
	return k
}

// register returns the instrument for name+labels, calling init to populate
// a newly created one. Cold path: locks and allocates.
func (r *Registry) register(name, kind string, labels []Label, init func(*instrument)) *instrument {
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	key := instrumentKey(name, ls)
	r.mu.Lock()
	defer r.mu.Unlock()
	if in, ok := r.byKey[key]; ok {
		if in.kind != kind {
			panic("metrics: " + name + " registered as " + in.kind + ", re-requested as " + kind)
		}
		return in
	}
	in := &instrument{name: name, labels: ls, kind: kind}
	init(in)
	r.byKey[key] = in
	r.order = append(r.order, in)
	return in
}

// Counter registers (or fetches) a monotonic counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.register(name, kindCounter, labels, func(in *instrument) {
		in.counter = new(Counter)
	}).counter
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.register(name, kindGauge, labels, func(in *instrument) {
		in.gauge = new(Gauge)
	}).gauge
}

// GaugeFunc registers a derived gauge whose value is computed by fn at
// snapshot time. Re-registering replaces fn (a rebuilt component installs
// its fresh closure). fn is called outside the registry lock and must be
// safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, fn func() int64, labels ...Label) {
	in := r.register(name, kindGauge, labels, func(in *instrument) {})
	r.mu.Lock()
	in.gaugeFn = fn
	r.mu.Unlock()
}

// Histogram registers (or fetches) a fixed-bucket histogram of durations.
// bounds must be ascending; re-registering with different bounds panics.
func (r *Registry) Histogram(name string, bounds []time.Duration, labels ...Label) *Histogram {
	in := r.register(name, kindHistogram, labels, func(in *instrument) {
		in.hist = newHistogram(bounds)
	})
	if !boundsEqual(in.hist.bounds, bounds) {
		panic("metrics: histogram " + name + " re-registered with different buckets")
	}
	return in.hist
}

func boundsEqual(a, b []time.Duration) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// --- Counter ----------------------------------------------------------------

// counterStripes is the shard count; a power of two so the reduction is a
// mask.
const counterStripes = 8

// counterCell is one stripe, padded out to its own cache line so concurrent
// adders on different stripes never false-share.
type counterCell struct {
	n atomic.Int64
	_ [56]byte
}

// Counter is an allocation-free monotonic counter sharded across
// cache-line-padded stripes: concurrent adders (the per-viewer push
// goroutines of the rtmp fan-out, parallel edge polls) spread across
// stripes instead of serializing on one contended cache line. Reads sum
// the stripes.
type Counter struct {
	cells [counterStripes]counterCell
}

// stripeIndex derives a stripe from the address of a stack local: distinct
// goroutines run on distinct stack allocations, so concurrent adders spread
// across stripes, while one goroutine keeps hitting the same (warm) line.
// The pointer is reduced to an integer immediately, so the local never
// escapes and the observation stays allocation-free.
func stripeIndex() uintptr {
	var marker byte
	return (uintptr(unsafe.Pointer(&marker)) >> 9) & (counterStripes - 1)
}

// Add adds n to the counter.
//
//livesim:hotpath
func (c *Counter) Add(n int64) { c.cells[stripeIndex()].n.Add(n) }

// Inc adds one.
//
//livesim:hotpath
func (c *Counter) Inc() { c.Add(1) }

// Value sums the stripes.
func (c *Counter) Value() int64 {
	var sum int64
	for i := range c.cells {
		sum += c.cells[i].n.Load()
	}
	return sum
}

// --- Gauge ------------------------------------------------------------------

// Gauge is an instantaneous value (active viewers, fleet nodes in a state,
// configured poll interval). All access is atomic and allocation-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
//
//livesim:hotpath
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by d.
//
//livesim:hotpath
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Value reads the gauge.
func (g *Gauge) Value() int64 { return g.v.Load() }
