package metrics

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestHistogramExactBoundaries pins the le (less-or-equal) bucket
// semantics: an observation exactly on a bound lands in that bound's
// bucket, one nanosecond above spills into the next, and anything past the
// last bound lands in +Inf. The paper's 3 s chunk duration and 9 s
// pre-buffer are exact DelayBuckets bounds, so this is what keeps those
// headline values in their own buckets.
func TestHistogramExactBoundaries(t *testing.T) {
	h := newHistogram([]time.Duration{time.Second, 3 * time.Second, 9 * time.Second})
	h.Observe(time.Second)                     // == bound 0
	h.Observe(time.Second + time.Nanosecond)   // just above bound 0
	h.Observe(3 * time.Second)                 // == bound 1
	h.Observe(9 * time.Second)                 // == bound 2
	h.Observe(9*time.Second + time.Nanosecond) // overflow
	h.Observe(-time.Second)                    // negative clamps into the first bucket
	h.Observe(0)                               // zero is <= every bound

	d := h.Data()
	// Per-bucket (non-cumulative) expectations: [<=1s, <=3s, <=9s, +Inf].
	want := []int64{3, 2, 1, 1}
	var prev int64
	for i, b := range d.Buckets {
		got := b.Count - prev
		prev = b.Count
		if got != want[i] {
			t.Errorf("bucket %d holds %d observations, want %d", i, got, want[i])
		}
	}
	if d.Buckets[len(d.Buckets)-1].Bound >= 0 {
		t.Errorf("last bucket bound = %v, want negative (+Inf)", d.Buckets[len(d.Buckets)-1].Bound)
	}
	if d.Count != 7 {
		t.Errorf("Count = %d, want 7", d.Count)
	}
}

func TestHistogramMeanIntegerDivision(t *testing.T) {
	h := newHistogram(DelayBuckets)
	h.Observe(3 * time.Second)
	h.Observe(4 * time.Second)
	// (3s+4s)/2 with integer division of nanoseconds.
	if got, want := h.Mean(), time.Duration((int64(3*time.Second)+int64(4*time.Second))/2); got != want {
		t.Fatalf("Mean = %v, want %v", got, want)
	}
	var empty Histogram
	if empty.Mean() != 0 {
		t.Fatalf("empty Mean = %v, want 0", empty.Mean())
	}
}

// TestHistogramConcurrentObserve hammers Observe from many goroutines under
// -race and checks that no observation is lost or double-counted.
func TestHistogramConcurrentObserve(t *testing.T) {
	h := newHistogram(DelayBuckets)
	const goroutines, perG = 8, 2000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for j := 0; j < perG; j++ {
				// Deterministic spread across buckets and into overflow.
				h.Observe(time.Duration(seed*perG+j) * 17 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*perG {
		t.Fatalf("Count = %d, want %d", got, goroutines*perG)
	}
	d := h.Data()
	if last := d.Buckets[len(d.Buckets)-1].Count; last != goroutines*perG {
		t.Fatalf("cumulative +Inf bucket = %d, want %d", last, goroutines*perG)
	}
	var wantSum int64
	for i := 0; i < goroutines; i++ {
		for j := 0; j < perG; j++ {
			wantSum += int64(time.Duration(i*perG+j) * 17 * time.Millisecond)
		}
	}
	if got := h.Sum(); int64(got) != wantSum {
		t.Fatalf("Sum = %d, want %d", got, wantSum)
	}
}

// TestHistogramSnapshotDuringWrites takes snapshots while writers are
// mid-flight and asserts the documented consistency invariants: cumulative
// bucket counts are non-decreasing across the bucket axis, the +Inf bucket
// never undercounts the total (writers bump their bucket before the total),
// and repeated snapshots are monotonic in time.
func TestHistogramSnapshotDuringWrites(t *testing.T) {
	h := newHistogram([]time.Duration{10 * time.Millisecond, 100 * time.Millisecond, time.Second})
	var stop atomic.Bool
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			d := time.Duration(seed+1) * 7 * time.Millisecond
			for !stop.Load() {
				h.Observe(d)
				h.Observe(d * 50) // second bucket / overflow traffic
			}
		}(i)
	}

	var prevCount, prevInf int64
	for i := 0; i < 200; i++ {
		d := h.Data()
		inf := d.Buckets[len(d.Buckets)-1].Count
		if inf < d.Count {
			t.Fatalf("snapshot %d: +Inf cumulative %d < Count %d", i, inf, d.Count)
		}
		for j := 1; j < len(d.Buckets); j++ {
			if d.Buckets[j].Count < d.Buckets[j-1].Count {
				t.Fatalf("snapshot %d: cumulative counts decrease at bucket %d", i, j)
			}
		}
		if d.Count < prevCount || inf < prevInf {
			t.Fatalf("snapshot %d: counts moved backwards in time", i)
		}
		prevCount, prevInf = d.Count, inf
	}
	stop.Store(true)
	wg.Wait()

	// Quiesced: totals must reconcile exactly.
	d := h.Data()
	if inf := d.Buckets[len(d.Buckets)-1].Count; inf != d.Count {
		t.Fatalf("after quiesce: +Inf cumulative %d != Count %d", inf, d.Count)
	}
}

func TestDelayBucketsResolvePaperComponents(t *testing.T) {
	h := newHistogram(DelayBuckets)
	// The three headline quantities must land in three distinct buckets:
	// Wowza→Fastly ≈0.3 s, chunk duration 3 s, pre-buffer 9 s.
	cases := []time.Duration{300 * time.Millisecond, 3 * time.Second, 9 * time.Second}
	idx := make(map[int]bool)
	for _, d := range cases {
		i := 0
		for i < len(h.bounds) && d > h.bounds[i] {
			i++
		}
		if idx[i] {
			t.Fatalf("duration %v shares bucket %d with another paper component", d, i)
		}
		idx[i] = true
	}
}
