package metrics

import (
	"sort"
	"strconv"
	"time"
)

// CounterValue is one counter series in a Snapshot.
type CounterValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// GaugeValue is one gauge series in a Snapshot.
type GaugeValue struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// Bucket is one cumulative histogram bucket rendered for exposition.
type Bucket struct {
	// LE is the inclusive upper bound in seconds ("+Inf" for the overflow
	// bucket), mirroring the conventional cumulative-histogram encoding.
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// HistogramValue is one histogram series in a Snapshot.
type HistogramValue struct {
	Name        string            `json:"name"`
	Labels      map[string]string `json:"labels,omitempty"`
	Count       int64             `json:"count"`
	SumSeconds  float64           `json:"sum_seconds"`
	MeanSeconds float64           `json:"mean_seconds"`
	Buckets     []Bucket          `json:"buckets"`
}

// Snapshot is a point-in-time view of every instrument in a Registry,
// shaped for JSON exposition and for test assertions.
type Snapshot struct {
	Counters   []CounterValue   `json:"counters"`
	Gauges     []GaugeValue     `json:"gauges"`
	Histograms []HistogramValue `json:"histograms"`
}

// Snapshot reads every instrument. The registry lock is held only to copy
// the instrument list; values (including GaugeFunc closures, which may take
// component locks of their own) are read outside it, so no lock ordering is
// imposed on callers. Output is sorted by name then labels, so repeated
// snapshots of a quiet registry are byte-identical.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	ins := make([]*instrument, len(r.order))
	copy(ins, r.order)
	fns := make(map[*instrument]func() int64)
	for _, in := range ins {
		if in.gaugeFn != nil {
			fns[in] = in.gaugeFn
		}
	}
	r.mu.Unlock()

	var s Snapshot
	for _, in := range ins {
		lm := labelMap(in.labels)
		switch in.kind {
		case kindCounter:
			s.Counters = append(s.Counters, CounterValue{Name: in.name, Labels: lm, Value: in.counter.Value()})
		case kindGauge:
			var v int64
			if fn, ok := fns[in]; ok {
				v = fn()
			} else {
				v = in.gauge.Value()
			}
			s.Gauges = append(s.Gauges, GaugeValue{Name: in.name, Labels: lm, Value: v})
		case kindHistogram:
			d := in.hist.Data()
			hv := HistogramValue{
				Name:       in.name,
				Labels:     lm,
				Count:      d.Count,
				SumSeconds: d.Sum.Seconds(),
				Buckets:    make([]Bucket, len(d.Buckets)),
			}
			if d.Count > 0 {
				hv.MeanSeconds = (d.Sum / time.Duration(d.Count)).Seconds()
			}
			for i, b := range d.Buckets {
				le := "+Inf"
				if b.Bound >= 0 {
					le = formatSeconds(b.Bound)
				}
				hv.Buckets[i] = Bucket{LE: le, Count: b.Count}
			}
			s.Histograms = append(s.Histograms, hv)
		}
	}
	sort.Slice(s.Counters, func(i, j int) bool {
		return seriesKey(s.Counters[i].Name, s.Counters[i].Labels) < seriesKey(s.Counters[j].Name, s.Counters[j].Labels)
	})
	sort.Slice(s.Gauges, func(i, j int) bool {
		return seriesKey(s.Gauges[i].Name, s.Gauges[i].Labels) < seriesKey(s.Gauges[j].Name, s.Gauges[j].Labels)
	})
	sort.Slice(s.Histograms, func(i, j int) bool {
		return seriesKey(s.Histograms[i].Name, s.Histograms[i].Labels) < seriesKey(s.Histograms[j].Name, s.Histograms[j].Labels)
	})
	return s
}

func labelMap(ls []Label) map[string]string {
	if len(ls) == 0 {
		return nil
	}
	m := make(map[string]string, len(ls))
	for _, l := range ls {
		m[l.Key] = l.Value
	}
	return m
}

// seriesKey renders a stable sort key; labels arrive pre-sorted by key at
// registration, but map iteration is not ordered, so re-sort here.
func seriesKey(name string, labels map[string]string) string {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := name
	for _, k := range keys {
		s += "{" + k + "=" + labels[k] + "}"
	}
	return s
}

// SeriesName renders name{k=v,...} with labels sorted by key — the flat
// identifier used by the /debug/vars view and log lines.
func SeriesName(name string, labels map[string]string) string {
	if len(labels) == 0 {
		return name
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := name + "{"
	for i, k := range keys {
		if i > 0 {
			s += ","
		}
		s += k + "=" + labels[k]
	}
	return s + "}"
}

func formatSeconds(d time.Duration) string {
	return strconv.FormatFloat(d.Seconds(), 'g', -1, 64)
}
