package player

import (
	"sort"
	"time"
)

// The platform delivers video and messages on independent channels;
// "viewers receive video frames and messages and combine them on the client
// side based on timestamps" (§4.1). Timeline is that client-side merger: it
// aligns comment/heart events against the video play-out so the UI shows
// each message at the stream moment it refers to.

// EventKind labels a timeline entry.
type EventKind int

// Timeline entry kinds.
const (
	EventVideo EventKind = iota
	EventComment
	EventHeart
)

// Entry is one merged timeline element.
type Entry struct {
	Kind EventKind
	// StreamTime is the broadcaster-side timestamp this entry refers to.
	StreamTime time.Time
	// PlayAt is when the local client should surface it.
	PlayAt time.Time
	// Seq identifies the video item (frames/chunks) this entry maps to.
	Seq uint64
	// UserID/Text carry message payloads.
	UserID string
	Text   string
}

// VideoItem is a played video unit with both timestamps known after the
// buffering simulation.
type VideoItem struct {
	Seq        uint64
	StreamTime time.Time // capture timestamp (broadcaster clock)
	PlayAt     time.Time // local play time
	Duration   time.Duration
}

// Message is one comment or heart with its broadcaster-side timestamp.
type Message struct {
	Kind       EventKind
	StreamTime time.Time
	UserID     string
	Text       string
}

// MergeTimeline aligns messages to the video play-out: each message is
// scheduled at the local play time of the video item whose stream interval
// contains the message's timestamp. Messages before the first item attach
// to it; messages after the last item attach to the last. The result is
// ordered by PlayAt, then by kind (video first).
func MergeTimeline(video []VideoItem, msgs []Message) []Entry {
	if len(video) == 0 {
		return nil
	}
	items := append([]VideoItem(nil), video...)
	sort.Slice(items, func(i, j int) bool { return items[i].StreamTime.Before(items[j].StreamTime) })

	entries := make([]Entry, 0, len(items)+len(msgs))
	for _, it := range items {
		entries = append(entries, Entry{
			Kind:       EventVideo,
			StreamTime: it.StreamTime,
			PlayAt:     it.PlayAt,
			Seq:        it.Seq,
		})
	}
	for _, m := range msgs {
		idx := sort.Search(len(items), func(i int) bool {
			return items[i].StreamTime.After(m.StreamTime)
		}) - 1
		if idx < 0 {
			idx = 0
		}
		it := items[idx]
		// Offset within the item keeps sub-item ordering stable.
		offset := m.StreamTime.Sub(it.StreamTime)
		if offset < 0 {
			offset = 0
		}
		if offset > it.Duration {
			offset = it.Duration
		}
		kind := EventComment
		if m.Kind == EventHeart {
			kind = EventHeart
		}
		entries = append(entries, Entry{
			Kind:       kind,
			StreamTime: m.StreamTime,
			PlayAt:     it.PlayAt.Add(offset),
			Seq:        it.Seq,
			UserID:     m.UserID,
			Text:       m.Text,
		})
	}
	sort.SliceStable(entries, func(i, j int) bool {
		if !entries[i].PlayAt.Equal(entries[j].PlayAt) {
			return entries[i].PlayAt.Before(entries[j].PlayAt)
		}
		return entries[i].Kind < entries[j].Kind
	})
	return entries
}
