package player_test

import (
	"fmt"
	"time"

	"repro/internal/player"
)

// ExampleSimulate replays the §6 buffering strategy over a jittery chunk
// stream and shows the smoothness/latency trade-off of the pre-buffer.
func ExampleSimulate() {
	start := time.Date(2015, 5, 15, 0, 0, 0, 0, time.UTC)
	var items []player.Item
	for i := 0; i < 10; i++ {
		late := time.Duration(0)
		if i == 5 {
			late = 7 * time.Second // one chunk arrives far too late
		}
		items = append(items, player.Item{
			Seq:      uint64(i),
			Duration: 3 * time.Second,
			ArriveAt: start.Add(time.Duration(i)*3*time.Second + late),
		})
	}
	for _, p := range []time.Duration{0, 9 * time.Second} {
		r := player.Simulate(items, player.Config{PreBuffer: p})
		fmt.Printf("P=%v: stall=%.2f delay=%v\n", p, r.StallRatio, r.MeanBufferingDelay)
	}
	// Output:
	// P=0s: stall=0.10 delay=0s
	// P=9s: stall=0.00 delay=5.4s
}

// ExampleMergeTimeline aligns a delayed comment with the video moment it
// refers to (§4.1's client-side merge by timestamps).
func ExampleMergeTimeline() {
	start := time.Date(2015, 5, 15, 0, 0, 0, 0, time.UTC)
	video := []player.VideoItem{
		{Seq: 0, StreamTime: start, PlayAt: start.Add(10 * time.Second), Duration: 3 * time.Second},
		{Seq: 1, StreamTime: start.Add(3 * time.Second), PlayAt: start.Add(13 * time.Second), Duration: 3 * time.Second},
	}
	msgs := []player.Message{{
		Kind:       player.EventComment,
		StreamTime: start.Add(4 * time.Second),
		UserID:     "fan",
		Text:       "what lake is that?",
	}}
	for _, e := range player.MergeTimeline(video, msgs) {
		if e.Kind == player.EventComment {
			fmt.Printf("comment shows during chunk %d at +%v\n", e.Seq, e.PlayAt.Sub(start))
		}
	}
	// Output:
	// comment shows during chunk 1 at +14s
}
