package player

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/rng"

	"repro/internal/testutil"
)

var t0 = time.Date(2015, 5, 15, 0, 0, 0, 0, time.UTC)

// regular builds n items of dur length arriving exactly on content cadence
// starting at t0 (a perfectly smooth stream).
func regular(n int, dur time.Duration) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{
			Seq:      uint64(i),
			Duration: dur,
			ArriveAt: t0.Add(time.Duration(i) * dur),
		}
	}
	return items
}

func TestEmptyInput(t *testing.T) {
	testutil.CheckGoroutines(t)
	if r := Simulate(nil, Config{}); r.Played != 0 || r.StallRatio != 0 {
		t.Fatalf("empty result = %+v", r)
	}
}

func TestSmoothStreamNoBufferNoStall(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(100, 40*time.Millisecond)
	r := Simulate(items, Config{PreBuffer: 0})
	if r.StallRatio != 0 {
		t.Fatalf("smooth stream stalled: %v", r.StallRatio)
	}
	if r.Played != 100 || r.Dropped != 0 {
		t.Fatalf("played=%d dropped=%d", r.Played, r.Dropped)
	}
	if r.MeanBufferingDelay != 0 {
		t.Fatalf("delay = %v on cadence-perfect arrivals", r.MeanBufferingDelay)
	}
}

func TestPreBufferAddsDelay(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(100, 40*time.Millisecond)
	r0 := Simulate(items, Config{PreBuffer: 0})
	r1 := Simulate(items, Config{PreBuffer: time.Second})
	if r1.MeanBufferingDelay <= r0.MeanBufferingDelay {
		t.Fatalf("pre-buffer did not add delay: %v vs %v", r1.MeanBufferingDelay, r0.MeanBufferingDelay)
	}
	// P=1s over 40ms items: playback starts after the 25th arrival
	// (1s of content), so item 0 is delayed ≈1s.
	if r1.MeanBufferingDelay < 800*time.Millisecond {
		t.Fatalf("delay = %v, want ≈1s", r1.MeanBufferingDelay)
	}
	if r1.StallRatio != 0 {
		t.Fatal("smooth stream stalled with pre-buffer")
	}
}

func TestJitteredStreamStallsWithoutBuffer(t *testing.T) {
	testutil.CheckGoroutines(t)
	src := rng.New(3)
	items := make([]Item, 200)
	for i := range items {
		jitter := time.Duration(src.Exp(float64(120 * time.Millisecond)))
		items[i] = Item{
			Seq:      uint64(i),
			Duration: 40 * time.Millisecond,
			ArriveAt: t0.Add(time.Duration(i)*40*time.Millisecond + jitter),
		}
	}
	r0 := Simulate(items, Config{PreBuffer: 0})
	r1 := Simulate(items, Config{PreBuffer: 2 * time.Second})
	if r0.StallRatio == 0 {
		t.Fatal("jittered stream did not stall with zero buffer")
	}
	if r1.StallRatio >= r0.StallRatio {
		t.Fatalf("pre-buffer did not reduce stalls: %v vs %v", r1.StallRatio, r0.StallRatio)
	}
}

func TestLateItemDropped(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(10, time.Second)
	// Item 5 arrives 3 s late: scheduled at t0+5s, arrives t0+8s.
	items[5].ArriveAt = t0.Add(8 * time.Second)
	r := Simulate(items, Config{PreBuffer: 0})
	if r.Dropped != 1 || r.Played != 9 {
		t.Fatalf("played=%d dropped=%d", r.Played, r.Dropped)
	}
	if r.StallRatio != 0.1 {
		t.Fatalf("stall ratio = %v, want 0.1 (1 of 10 seconds missing)", r.StallRatio)
	}
}

func TestOutOfOrderArrivalsBySeq(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(10, time.Second)
	// Shuffle arrival order but keep everything early enough to play.
	items[2], items[7] = items[7], items[2]
	for i := range items {
		items[i].ArriveAt = t0 // all arrive immediately
	}
	r := Simulate(items, Config{PreBuffer: 0})
	if r.Played != 10 || r.Dropped != 0 {
		t.Fatalf("out-of-order replay: played=%d dropped=%d", r.Played, r.Dropped)
	}
}

func TestShortBroadcastSmallerThanPreBuffer(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(3, time.Second) // 3 s of content, 9 s pre-buffer
	r := Simulate(items, Config{PreBuffer: 9 * time.Second})
	if r.Played != 3 || r.Dropped != 0 {
		t.Fatalf("short broadcast: played=%d dropped=%d", r.Played, r.Dropped)
	}
	if !r.StartAt.Equal(items[2].ArriveAt) {
		t.Fatalf("StartAt = %v, want last arrival", r.StartAt)
	}
}

func TestPaperTradeoffMonotonicity(t *testing.T) {
	testutil.CheckGoroutines(t)
	// The §6 claim in miniature: larger P monotonically lowers stalls
	// and raises delay on a jittery chunk stream.
	src := rng.New(11)
	items := make([]Item, 120)
	for i := range items {
		jitter := time.Duration((src.Float64() - 0.2) * float64(4*time.Second))
		items[i] = Item{
			Seq:      uint64(i),
			Duration: 3 * time.Second,
			ArriveAt: t0.Add(time.Duration(i)*3*time.Second + jitter),
		}
	}
	sweep := Sweep(items, []time.Duration{0, 3 * time.Second, 6 * time.Second, 9 * time.Second})
	for i := 1; i < len(sweep); i++ {
		if sweep[i].StallRatio > sweep[i-1].StallRatio+1e-9 {
			t.Fatalf("stall ratio not non-increasing in P: %+v", sweep)
		}
		if sweep[i].MeanBufferingDelay < sweep[i-1].MeanBufferingDelay {
			t.Fatalf("buffering delay not non-decreasing in P: %+v", sweep)
		}
	}
}

func TestMaxDelayAtLeastMean(t *testing.T) {
	testutil.CheckGoroutines(t)
	items := regular(50, 40*time.Millisecond)
	r := Simulate(items, Config{PreBuffer: 500 * time.Millisecond})
	if r.MaxBufferingDelay < r.MeanBufferingDelay {
		t.Fatalf("max %v < mean %v", r.MaxBufferingDelay, r.MeanBufferingDelay)
	}
}

// Property: stall ratio is always in [0,1], played+dropped = n, and delays
// are non-negative.
func TestInvariantsProperty(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := func(arrivalOffsets []int16, preBufferMs uint16) bool {
		if len(arrivalOffsets) == 0 {
			return true
		}
		items := make([]Item, len(arrivalOffsets))
		for i, off := range arrivalOffsets {
			items[i] = Item{
				Seq:      uint64(i),
				Duration: time.Second,
				ArriveAt: t0.Add(time.Duration(i)*time.Second + time.Duration(off)*time.Millisecond),
			}
		}
		r := Simulate(items, Config{PreBuffer: time.Duration(preBufferMs) * time.Millisecond})
		if r.StallRatio < 0 || r.StallRatio > 1 {
			return false
		}
		if r.Played+r.Dropped != len(items) {
			return false
		}
		return r.MeanBufferingDelay >= 0 && r.MaxBufferingDelay >= r.MeanBufferingDelay
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: increasing pre-buffer never increases the stall ratio.
func TestPreBufferMonotoneProperty(t *testing.T) {
	testutil.CheckGoroutines(t)
	f := func(seed uint64) bool {
		src := rng.New(seed)
		items := make([]Item, 60)
		for i := range items {
			jitter := time.Duration(src.Exp(float64(time.Second)))
			items[i] = Item{
				Seq:      uint64(i),
				Duration: time.Second,
				ArriveAt: t0.Add(time.Duration(i)*time.Second + jitter),
			}
		}
		prev := 2.0
		for _, p := range []time.Duration{0, time.Second, 3 * time.Second, 9 * time.Second} {
			r := Simulate(items, Config{PreBuffer: p})
			if r.StallRatio > prev+1e-9 {
				return false
			}
			prev = r.StallRatio
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
