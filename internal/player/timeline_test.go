package player

import (
	"testing"
	"time"

	"repro/internal/testutil"
)

func mkVideo(n int, dur, playDelay time.Duration) []VideoItem {
	items := make([]VideoItem, n)
	for i := range items {
		st := t0.Add(time.Duration(i) * dur)
		items[i] = VideoItem{
			Seq:        uint64(i),
			StreamTime: st,
			PlayAt:     st.Add(playDelay),
			Duration:   dur,
		}
	}
	return items
}

func TestMergeTimelineEmpty(t *testing.T) {
	testutil.CheckGoroutines(t)
	if got := MergeTimeline(nil, []Message{{Kind: EventHeart}}); got != nil {
		t.Fatalf("merge without video = %v", got)
	}
}

func TestMergeAlignsMessagesToItems(t *testing.T) {
	testutil.CheckGoroutines(t)
	video := mkVideo(5, time.Second, 10*time.Second)
	msgs := []Message{
		{Kind: EventComment, StreamTime: t0.Add(1500 * time.Millisecond), UserID: "u1", Text: "hi"},
		{Kind: EventHeart, StreamTime: t0.Add(3 * time.Second), UserID: "u2"},
	}
	entries := MergeTimeline(video, msgs)
	if len(entries) != 7 {
		t.Fatalf("entries = %d", len(entries))
	}
	var comment, heart *Entry
	for i := range entries {
		switch entries[i].Kind {
		case EventComment:
			comment = &entries[i]
		case EventHeart:
			heart = &entries[i]
		}
	}
	// Comment at stream 1.5s belongs to item 1 (stream [1s,2s)), plays at
	// its play time + 0.5s offset.
	if comment.Seq != 1 {
		t.Fatalf("comment mapped to seq %d", comment.Seq)
	}
	if want := t0.Add(11500 * time.Millisecond); !comment.PlayAt.Equal(want) {
		t.Fatalf("comment PlayAt = %v, want %v", comment.PlayAt, want)
	}
	// Heart at exactly 3s belongs to item 3.
	if heart.Seq != 3 {
		t.Fatalf("heart mapped to seq %d", heart.Seq)
	}
}

func TestMergeClampsOutOfRangeMessages(t *testing.T) {
	testutil.CheckGoroutines(t)
	video := mkVideo(3, time.Second, 0)
	msgs := []Message{
		{Kind: EventHeart, StreamTime: t0.Add(-time.Hour)}, // before stream
		{Kind: EventHeart, StreamTime: t0.Add(time.Hour)},  // after stream
	}
	entries := MergeTimeline(video, msgs)
	var hearts []Entry
	for _, e := range entries {
		if e.Kind == EventHeart {
			hearts = append(hearts, e)
		}
	}
	if len(hearts) != 2 {
		t.Fatalf("hearts = %d", len(hearts))
	}
	if hearts[0].Seq != 0 {
		t.Fatalf("early heart → seq %d, want 0", hearts[0].Seq)
	}
	if hearts[1].Seq != 2 {
		t.Fatalf("late heart → seq %d, want last item", hearts[1].Seq)
	}
}

func TestMergeOrderedByPlayTime(t *testing.T) {
	testutil.CheckGoroutines(t)
	video := mkVideo(10, time.Second, 5*time.Second)
	var msgs []Message
	for i := 0; i < 20; i++ {
		msgs = append(msgs, Message{
			Kind:       EventHeart,
			StreamTime: t0.Add(time.Duration(19-i) * 500 * time.Millisecond),
		})
	}
	entries := MergeTimeline(video, msgs)
	for i := 1; i < len(entries); i++ {
		if entries[i].PlayAt.Before(entries[i-1].PlayAt) {
			t.Fatal("timeline not ordered by PlayAt")
		}
	}
}

func TestMergeUnsortedVideoInput(t *testing.T) {
	testutil.CheckGoroutines(t)
	video := mkVideo(4, time.Second, 0)
	video[0], video[3] = video[3], video[0]
	msgs := []Message{{Kind: EventComment, StreamTime: t0.Add(2500 * time.Millisecond)}}
	entries := MergeTimeline(video, msgs)
	for _, e := range entries {
		if e.Kind == EventComment && e.Seq != 2 {
			t.Fatalf("comment → seq %d, want 2", e.Seq)
		}
	}
}
