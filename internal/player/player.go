// Package player reproduces Periscope's client-side buffering strategy as
// decompiled from its Android app (§6): pre-buffer P seconds of content
// before playback starts, then play items strictly by sequence number on a
// fixed schedule; items that arrive after their scheduled play time are
// discarded. Smoothness is measured as the stalling ratio (missing content
// duration over broadcast duration) and latency as the mean buffering delay
// (scheduled play time minus arrival time).
//
// This is the simulator behind Figures 16 and 17 and the P=9s→6s
// optimization claim.
package player

import (
	"sort"
	"time"
)

// Item is one playable unit: a frame (RTMP) or a chunk (HLS).
type Item struct {
	Seq      uint64
	Duration time.Duration
	ArriveAt time.Time
}

// Config tunes the simulated client.
type Config struct {
	// PreBuffer is P: playback starts once this much contiguous content
	// has arrived. Periscope ships P≈9s for HLS and ≈1s for RTMP (§6).
	PreBuffer time.Duration
}

// Result summarizes one playback simulation.
type Result struct {
	// StallRatio is discarded (unplayable-in-time) content duration over
	// total content duration.
	StallRatio float64
	// MeanBufferingDelay averages scheduled-play minus arrival over the
	// items that played.
	MeanBufferingDelay time.Duration
	// MaxBufferingDelay is the worst played-item delay.
	MaxBufferingDelay time.Duration
	// Played and Dropped count items.
	Played  int
	Dropped int
	// StartAt is when playback began (pre-buffer satisfied).
	StartAt time.Time
}

// Simulate runs the §6 buffering strategy over the items. Items may arrive
// in any order; they are played in sequence order. An empty input returns a
// zero Result.
func Simulate(items []Item, cfg Config) Result {
	if len(items) == 0 {
		return Result{}
	}
	bySeq := append([]Item(nil), items...)
	sort.Slice(bySeq, func(i, j int) bool { return bySeq[i].Seq < bySeq[j].Seq })

	start := startTime(bySeq, cfg.PreBuffer)

	// Fixed schedule: item i plays at start + content offset of items
	// before it. Latecomers are discarded (§6: "Arrivals that come later
	// than their scheduled play time are discarded").
	var (
		res        Result
		offset     time.Duration
		totalDelay time.Duration
		totalDur   time.Duration
		droppedDur time.Duration
	)
	res.StartAt = start
	for _, it := range bySeq {
		scheduled := start.Add(offset)
		offset += it.Duration
		totalDur += it.Duration
		// The discard rule operates at slot granularity: an item that
		// arrives before its scheduled slot ENDS is still shown (the
		// player is mid-slot and picks it up); only an item that
		// misses its whole slot is discarded. This matches the
		// paper's traces, where P=0 RTMP streams stall on bursts, not
		// on every millisecond of jitter (Fig. 16a's 0–0.1 range).
		if it.ArriveAt.After(scheduled.Add(it.Duration)) {
			// Discarded content is exactly the stall time: that
			// scheduled slot had no video to play.
			res.Dropped++
			droppedDur += it.Duration
			continue
		}
		delay := scheduled.Sub(it.ArriveAt)
		if delay < 0 {
			// Arrived mid-slot: played immediately, no buffering.
			delay = 0
		}
		totalDelay += delay
		if delay > res.MaxBufferingDelay {
			res.MaxBufferingDelay = delay
		}
		res.Played++
	}
	if res.Played > 0 {
		res.MeanBufferingDelay = totalDelay / time.Duration(res.Played)
	}
	if totalDur > 0 {
		res.StallRatio = float64(droppedDur) / float64(totalDur)
	}
	return res
}

// startTime computes when playback begins: the earliest instant at which
// PreBuffer worth of content has arrived (by arrival order), or the first
// arrival when PreBuffer is zero. If the whole broadcast is shorter than the
// pre-buffer, playback starts at the last arrival.
func startTime(bySeq []Item, preBuffer time.Duration) time.Time {
	byArrival := append([]Item(nil), bySeq...)
	sort.Slice(byArrival, func(i, j int) bool {
		return byArrival[i].ArriveAt.Before(byArrival[j].ArriveAt)
	})
	if preBuffer <= 0 {
		return byArrival[0].ArriveAt
	}
	var buffered time.Duration
	for _, it := range byArrival {
		buffered += it.Duration
		if buffered >= preBuffer {
			return it.ArriveAt
		}
	}
	return byArrival[len(byArrival)-1].ArriveAt
}

// Sweep runs Simulate across pre-buffer values, returning one Result per P.
// This is the Figure 16/17 x-axis sweep.
func Sweep(items []Item, preBuffers []time.Duration) []Result {
	out := make([]Result, 0, len(preBuffers))
	for _, p := range preBuffers {
		out = append(out, Simulate(items, Config{PreBuffer: p}))
	}
	return out
}
