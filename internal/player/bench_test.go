package player

import (
	"testing"
	"time"

	"repro/internal/rng"
)

func benchItems(n int) []Item {
	src := rng.New(1)
	items := make([]Item, n)
	for i := range items {
		jitter := time.Duration(src.Exp(float64(500 * time.Millisecond)))
		items[i] = Item{
			Seq:      uint64(i),
			Duration: 3 * time.Second,
			ArriveAt: t0.Add(time.Duration(i)*3*time.Second + jitter),
		}
	}
	return items
}

func BenchmarkSimulate(b *testing.B) {
	items := benchItems(1200) // a one-hour broadcast of 3s chunks
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Simulate(items, Config{PreBuffer: 6 * time.Second})
	}
}

func BenchmarkSweep(b *testing.B) {
	items := benchItems(1200)
	ps := []time.Duration{0, 3 * time.Second, 6 * time.Second, 9 * time.Second}
	for i := 0; i < b.N; i++ {
		Sweep(items, ps)
	}
}

func BenchmarkMergeTimeline(b *testing.B) {
	video := mkVideo(1000, time.Second, 5*time.Second)
	var msgs []Message
	src := rng.New(2)
	for i := 0; i < 2000; i++ {
		msgs = append(msgs, Message{
			Kind:       EventHeart,
			StreamTime: t0.Add(time.Duration(src.Float64() * 1000 * float64(time.Second))),
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeTimeline(video, msgs)
	}
}
