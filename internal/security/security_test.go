package security

import (
	"context"
	"crypto/ed25519"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

func frames(n int) []media.Frame {
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	base := time.Now()
	out := make([]media.Frame, n)
	for i := range out {
		out[i] = enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
	}
	return out
}

func TestSignVerifyRoundtrip(t *testing.T) {
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	f := frames(1)[0]
	fb := media.MarshalFrame(nil, &f)
	sig := SignFrame(priv, fb)
	if !VerifyFrame(pub, fb, sig) {
		t.Fatal("valid signature rejected")
	}
	fb[len(fb)-1] ^= 1
	if VerifyFrame(pub, fb, sig) {
		t.Fatal("tampered frame verified")
	}
}

func TestFrameDigestDeterministic(t *testing.T) {
	f := frames(1)[0]
	fb := media.MarshalFrame(nil, &f)
	if FrameDigest(fb) != FrameDigest(fb) {
		t.Fatal("digest not deterministic")
	}
	fb2 := append([]byte(nil), fb...)
	fb2[0] ^= 1
	if FrameDigest(fb) == FrameDigest(fb2) {
		t.Fatal("distinct inputs collided")
	}
}

func TestTamperFuncs(t *testing.T) {
	f := frames(1)[0]
	orig := append([]byte(nil), f.Payload...)
	if !BlackFrames()(&f) {
		t.Fatal("BlackFrames reported no change")
	}
	for _, b := range f.Payload {
		if b != 0 {
			t.Fatal("payload not blacked out")
		}
	}
	if len(f.Payload) != len(orig) {
		t.Fatal("BlackFrames changed payload size (detectable)")
	}
	ReplacePayload([]byte("pwned"))(&f)
	if string(f.Payload) != "pwned" {
		t.Fatal("ReplacePayload failed")
	}
}

// startVictimServer runs an rtmp server acting as the Wowza target.
func startVictimServer(t *testing.T, cfg rtmp.ServerConfig) (srv *rtmp.Server, addr string) {
	t.Helper()
	s := rtmp.NewServer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); s.Close() })
	return s, ln.Addr().String()
}

func startMITM(t *testing.T, cfg InterceptorConfig) string {
	t.Helper()
	ic := NewInterceptor(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := ic.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cancel(); ic.Close() })
	return ln.Addr().String()
}

func TestBroadcasterSideHijack(t *testing.T) {
	// §7.1: attacker on the broadcaster's WiFi rewrites the upload; all
	// viewers see black frames while the broadcaster sees the original.
	_, serverAddr := startVictimServer(t, rtmp.ServerConfig{})
	mitmAddr := startMITM(t, InterceptorConfig{Target: serverAddr, Tamper: BlackFrames()})
	ctx := context.Background()

	// The victim broadcaster unknowingly connects through the attacker.
	pub, err := rtmp.Publish(ctx, mitmAddr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	view, err := rtmp.Subscribe(ctx, serverAddr, "b1", "tok", rtmp.ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	sent := frames(10)
	for i := range sent {
		if err := pub.Send(&sent[i]); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()

	var received []media.Frame
	for rf := range view.Frames() {
		received = append(received, rf.Frame)
	}
	if len(received) != 10 {
		t.Fatalf("viewer received %d/10 frames", len(received))
	}
	if n := AuditFrames(sent, received); n != 10 {
		t.Fatalf("tampered frames = %d, want all 10", n)
	}
	for _, f := range received {
		for _, b := range f.Payload {
			if b != 0 {
				t.Fatal("viewer frame not fully blacked out")
			}
		}
	}
}

func TestViewerSideHijack(t *testing.T) {
	// §7.1 variant: attacker on one viewer's network; only that viewer
	// is affected.
	_, serverAddr := startVictimServer(t, rtmp.ServerConfig{})
	mitmAddr := startMITM(t, InterceptorConfig{Target: serverAddr, Tamper: BlackFrames()})
	ctx := context.Background()

	pub, err := rtmp.Publish(ctx, serverAddr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := rtmp.Subscribe(ctx, mitmAddr, "b1", "tok", rtmp.ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()
	clean, err := rtmp.Subscribe(ctx, serverAddr, "b1", "tok", rtmp.ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()

	sent := frames(5)
	for i := range sent {
		pub.Send(&sent[i])
	}
	pub.End()

	var victimGot, cleanGot []media.Frame
	for rf := range victim.Frames() {
		victimGot = append(victimGot, rf.Frame)
	}
	for rf := range clean.Frames() {
		cleanGot = append(cleanGot, rf.Frame)
	}
	if n := AuditFrames(sent, victimGot); n != 5 {
		t.Fatalf("victim tampered frames = %d, want 5", n)
	}
	if n := AuditFrames(sent, cleanGot); n != 0 {
		t.Fatalf("clean viewer tampered frames = %d, want 0", n)
	}
}

type keyAuth struct{ pub ed25519.PublicKey }

func (keyAuth) Authorize(string, string, string) bool { return true }
func (a keyAuth) PublicKey(string) ed25519.PublicKey  { return a.pub }

func TestDefenseBlocksBroadcasterSideTamper(t *testing.T) {
	// §7.2: with signed frames, the server detects the rewrite and drops
	// the tampered content.
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	srv, serverAddr := startVictimServer(t, rtmp.ServerConfig{Auth: keyAuth{pub: pub}})
	mitmAddr := startMITM(t, InterceptorConfig{
		Target: serverAddr, Tamper: BlackFrames(), TamperSigned: true,
	})
	ctx := context.Background()

	publisher, err := rtmp.Publish(ctx, mitmAddr, "b1", "tok", priv)
	if err != nil {
		t.Fatal(err)
	}
	view, err := rtmp.Subscribe(ctx, serverAddr, "b1", "tok", rtmp.ViewerOptions{PubKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	sent := frames(5)
	for i := range sent {
		publisher.Send(&sent[i])
	}
	publisher.End()

	got := 0
	for range view.Frames() {
		got++
	}
	if got != 0 {
		t.Fatalf("viewer received %d tampered frames through defense", got)
	}
	if srv.Stats().TamperedFrames != 5 {
		t.Fatalf("server detected %d/5 tampered frames", srv.Stats().TamperedFrames)
	}
}

func TestDefensePassesUntamperedSignedStream(t *testing.T) {
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	_, serverAddr := startVictimServer(t, rtmp.ServerConfig{Auth: keyAuth{pub: pub}})
	// MITM present but only relaying (it cannot alter without detection,
	// so a rational attacker gains nothing).
	mitmAddr := startMITM(t, InterceptorConfig{Target: serverAddr})
	ctx := context.Background()

	publisher, err := rtmp.Publish(ctx, mitmAddr, "b1", "tok", priv)
	if err != nil {
		t.Fatal(err)
	}
	view, err := rtmp.Subscribe(ctx, serverAddr, "b1", "tok", rtmp.ViewerOptions{PubKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	sent := frames(5)
	for i := range sent {
		publisher.Send(&sent[i])
	}
	publisher.End()

	got := 0
	for rf := range view.Frames() {
		if !rf.Verified {
			t.Fatal("relayed signed frame failed viewer verification")
		}
		got++
	}
	if got != 5 {
		t.Fatalf("received %d/5 signed frames through passive MITM", got)
	}
}

func TestViewerSideDefenseDetection(t *testing.T) {
	// Viewer-side rewrite of a signed stream: the viewer's own
	// verification flags every frame (Wowza forwarded the key, §7.2).
	pub, priv, err := GenerateKeyPair()
	if err != nil {
		t.Fatal(err)
	}
	_, serverAddr := startVictimServer(t, rtmp.ServerConfig{Auth: keyAuth{pub: pub}})
	mitmAddr := startMITM(t, InterceptorConfig{
		Target: serverAddr, Tamper: BlackFrames(), TamperSigned: true,
	})
	ctx := context.Background()

	publisher, err := rtmp.Publish(ctx, serverAddr, "b1", "tok", priv)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := rtmp.Subscribe(ctx, mitmAddr, "b1", "tok", rtmp.ViewerOptions{PubKey: pub})
	if err != nil {
		t.Fatal(err)
	}
	defer victim.Close()

	sent := frames(5)
	for i := range sent {
		publisher.Send(&sent[i])
	}
	publisher.End()

	flagged, total := 0, 0
	for rf := range victim.Frames() {
		total++
		if !rf.Verified {
			flagged++
		}
	}
	if total != 5 || flagged != 5 {
		t.Fatalf("flagged %d/%d frames, want 5/5", flagged, total)
	}
}

func TestAuditFrames(t *testing.T) {
	a := frames(3)
	b := frames(3)
	if AuditFrames(a, b) != 0 {
		t.Fatal("identical streams reported tampered")
	}
	b[1].Payload[0] ^= 0xFF
	if AuditFrames(a, b) != 1 {
		t.Fatal("single tamper not detected")
	}
	if AuditFrames(a, b[:1]) != 0 {
		t.Fatal("length mismatch mishandled")
	}
}
