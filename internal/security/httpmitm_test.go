package security

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

// buildSignedEdge runs an origin fed over RTMP with signed frames and an
// edge serving HLS, returning the edge HTTP server URL and the keys.
func buildSignedEdge(t *testing.T, signed bool) (edgeURL string, pub []byte, done func()) {
	t.Helper()
	var kPub []byte
	var kPriv []byte
	if signed {
		p, s, err := GenerateKeyPair()
		if err != nil {
			t.Fatal(err)
		}
		kPub, kPriv = p, s
	}
	var auth rtmp.Auth = rtmp.AllowAll
	if signed {
		auth = keyAuth{pub: kPub}
	}
	origin := cdn.NewOrigin(cdn.OriginConfig{
		Site:          geo.WowzaSites()[0],
		ChunkDuration: time.Second,
		RTMP:          rtmp.ServerConfig{Auth: auth},
	})
	edge := cdn.NewEdge(cdn.EdgeConfig{
		Site:    geo.FastlySites()[0],
		Resolve: func(string) (cdn.Upstream, error) { return cdn.Upstream{Store: origin}, nil },
	})
	origin.RegisterEdge(edge)
	edgeSrv := httptest.NewServer(hls.Handler("/hls", edge))

	ctx, cancel := context.WithCancel(context.Background())
	ln, err := origin.RTMP().Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	pubr, err := rtmp.Publish(ctx, ln.Addr().String(), "b1", "tok", kPriv)
	if err != nil {
		t.Fatal(err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(3))
	base := time.Now()
	for i := 0; i < 50; i++ { // two 1s chunks
		f := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		if err := pubr.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	pubr.End()

	// Wait until the origin assembled both chunks.
	deadline := time.Now().Add(2 * time.Second)
	for {
		cl, err := origin.ChunkList(ctx, "b1")
		if err == nil && len(cl.Chunks) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("origin never assembled chunks")
		}
		time.Sleep(5 * time.Millisecond)
	}
	return edgeSrv.URL + "/hls", kPub, func() {
		cancel()
		origin.RTMP().Close()
		edgeSrv.Close()
	}
}

func TestHLSChunkTampering(t *testing.T) {
	edgeURL, _, done := buildSignedEdge(t, false)
	defer done()

	// The attacker proxies the viewer's HTTP traffic to the edge.
	mitm := &HTTPInterceptor{
		Target: edgeURL[:len(edgeURL)-len("/hls")],
		Tamper: BlackFrames(),
	}
	mitmSrv := httptest.NewServer(mitm)
	defer mitmSrv.Close()

	client := &hls.Client{BaseURL: mitmSrv.URL + "/hls"}
	ctx := context.Background()
	cl, err := client.FetchChunkList(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cl.Chunks) != 2 {
		t.Fatalf("chunks = %d", len(cl.Chunks))
	}
	chunk, err := client.FetchChunk(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range chunk.Frames {
		for _, b := range f.Payload {
			if b != 0 {
				t.Fatal("HLS chunk not blacked out through MITM")
			}
		}
	}
	if mitm.Stats().ChunksTampered.Load() == 0 {
		t.Fatal("interceptor recorded no tampering")
	}
}

func TestHLSSignedChunkDetectsTampering(t *testing.T) {
	edgeURL, pub, done := buildSignedEdge(t, true)
	defer done()

	// Clean path first: signed chunks verify end-to-end.
	clean := &hls.Client{BaseURL: edgeURL}
	ctx := context.Background()
	chunk, err := clean.FetchChunk(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	verified, tampered, unsigned := VerifyChunk(pub, chunk)
	if tampered != 0 || unsigned != 0 || verified != len(chunk.Frames) {
		t.Fatalf("clean chunk: verified=%d tampered=%d unsigned=%d of %d",
			verified, tampered, unsigned, len(chunk.Frames))
	}

	// Through the MITM: payload rewritten, signatures now stale.
	mitm := &HTTPInterceptor{
		Target: edgeURL[:len(edgeURL)-len("/hls")],
		Tamper: BlackFrames(),
	}
	mitmSrv := httptest.NewServer(mitm)
	defer mitmSrv.Close()
	victim := &hls.Client{BaseURL: mitmSrv.URL + "/hls"}
	chunk, err = victim.FetchChunk(ctx, "b1", 0)
	if err != nil {
		t.Fatal(err)
	}
	verified, tampered, _ = VerifyChunk(pub, chunk)
	if verified != 0 || tampered != len(chunk.Frames) {
		t.Fatalf("tampered chunk: verified=%d tampered=%d of %d",
			verified, tampered, len(chunk.Frames))
	}
}

func TestHTTPInterceptorPassesNonChunkTraffic(t *testing.T) {
	edgeURL, _, done := buildSignedEdge(t, false)
	defer done()
	mitm := &HTTPInterceptor{
		Target: edgeURL[:len(edgeURL)-len("/hls")],
		Tamper: BlackFrames(),
	}
	mitmSrv := httptest.NewServer(mitm)
	defer mitmSrv.Close()
	client := &hls.Client{BaseURL: mitmSrv.URL + "/hls"}
	// Chunklist requests are relayed untouched and still parse.
	cl, err := client.FetchChunkList(context.Background(), "b1", 0)
	if err != nil || len(cl.Chunks) != 2 {
		t.Fatalf("chunklist through MITM: %v", err)
	}
}
