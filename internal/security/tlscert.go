package security

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/tls"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/pem"
	"fmt"
	"math/big"
	"net"
	"time"
)

// Periscope reserves TLS for private broadcasts (§7.2: "for scalability,
// Periscope uses RTMP/HLS for all public broadcasts and only uses RTMPS for
// private broadcasts"; Facebook Live uses RTMPS everywhere). These helpers
// mint the platform's self-signed server credentials; clients receive the
// CA certificate over the authenticated control channel, so the §7 attacker
// — who only taps the data path — cannot substitute its own.

// TLSCredentials hold a freshly minted server certificate and the CA pool
// clients should trust.
type TLSCredentials struct {
	// Server is ready for tls.Server / tls.Listen.
	Server tls.Certificate
	// CertPEM is the certificate clients pin (delivered via the control
	// channel in the platform).
	CertPEM []byte
	// ClientConfig returns a tls.Config trusting exactly this server.
	pool *x509.CertPool
}

// GenerateTLS mints a self-signed ECDSA P-256 certificate valid for
// loopback use.
func GenerateTLS() (*TLSCredentials, error) {
	key, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("security: tls keygen: %w", err)
	}
	serial, err := rand.Int(rand.Reader, new(big.Int).Lsh(big.NewInt(1), 128))
	if err != nil {
		return nil, fmt.Errorf("security: tls serial: %w", err)
	}
	tmpl := x509.Certificate{
		SerialNumber:          serial,
		Subject:               pkix.Name{CommonName: "livesim-rtmps"},
		NotBefore:             time.Now().Add(-time.Hour),
		NotAfter:              time.Now().Add(24 * 365 * time.Hour),
		KeyUsage:              x509.KeyUsageDigitalSignature | x509.KeyUsageCertSign,
		ExtKeyUsage:           []x509.ExtKeyUsage{x509.ExtKeyUsageServerAuth},
		IPAddresses:           []net.IP{net.IPv4(127, 0, 0, 1), net.IPv6loopback},
		DNSNames:              []string{"localhost"},
		IsCA:                  true,
		BasicConstraintsValid: true,
	}
	der, err := x509.CreateCertificate(rand.Reader, &tmpl, &tmpl, &key.PublicKey, key)
	if err != nil {
		return nil, fmt.Errorf("security: tls cert: %w", err)
	}
	certPEM := pem.EncodeToMemory(&pem.Block{Type: "CERTIFICATE", Bytes: der})
	keyDER, err := x509.MarshalECPrivateKey(key)
	if err != nil {
		return nil, fmt.Errorf("security: tls key: %w", err)
	}
	keyPEM := pem.EncodeToMemory(&pem.Block{Type: "EC PRIVATE KEY", Bytes: keyDER})
	serverCert, err := tls.X509KeyPair(certPEM, keyPEM)
	if err != nil {
		return nil, fmt.Errorf("security: tls pair: %w", err)
	}
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, fmt.Errorf("security: tls pool")
	}
	return &TLSCredentials{Server: serverCert, CertPEM: certPEM, pool: pool}, nil
}

// ServerConfig returns the listener-side TLS configuration.
func (c *TLSCredentials) ServerConfig() *tls.Config {
	return &tls.Config{Certificates: []tls.Certificate{c.Server}, MinVersion: tls.VersionTLS12}
}

// ClientConfig returns a client configuration pinning the platform CA.
func (c *TLSCredentials) ClientConfig() *tls.Config {
	return &tls.Config{RootCAs: c.pool, MinVersion: tls.VersionTLS12}
}

// ClientConfigFromPEM builds the client configuration from the PEM bytes
// handed out by the control channel.
func ClientConfigFromPEM(certPEM []byte) (*tls.Config, error) {
	pool := x509.NewCertPool()
	if !pool.AppendCertsFromPEM(certPEM) {
		return nil, fmt.Errorf("security: invalid CA PEM")
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}, nil
}
