// Package security reproduces §7: the stream-hijacking vulnerability and its
// countermeasure. Because the RTMP-like path is unencrypted and frames are
// unauthenticated, an on-path attacker (the paper used ARP spoofing on a
// shared WiFi) can silently replace video content at the broadcaster's or a
// viewer's edge network. The Interceptor here is that attacker: a
// protocol-aware man-in-the-middle that rewrites MsgFrame bodies in flight.
//
// The defense (§7.2) is the signature scheme the paper proposed to both
// companies: the broadcaster exchanges an Ed25519 key pair with the control
// plane over the secure channel, signs a hash of every frame, and servers
// and viewers verify — implemented in the rtmp and control packages; this
// package supplies the key utilities and canonical tamper payloads.
package security

import (
	"context"
	"crypto/ed25519"
	"crypto/sha256"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/media"
	"repro/internal/wire"
)

// GenerateKeyPair creates the broadcaster's signing keys (§7.2 exchanges the
// public half with the server over TLS).
func GenerateKeyPair() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	pub, priv, err := ed25519.GenerateKey(nil)
	if err != nil {
		return nil, nil, fmt.Errorf("security: keygen: %w", err)
	}
	return pub, priv, nil
}

// FrameDigest hashes a frame's wire bytes; §7.2 signs "a secure one-way
// hash of each frame".
func FrameDigest(frameBytes []byte) [32]byte { return sha256.Sum256(frameBytes) }

// SignFrame signs a frame's wire bytes.
func SignFrame(priv ed25519.PrivateKey, frameBytes []byte) []byte {
	return ed25519.Sign(priv, frameBytes)
}

// VerifyFrame checks a frame signature.
func VerifyFrame(pub ed25519.PublicKey, frameBytes, sig []byte) bool {
	return ed25519.Verify(pub, frameBytes, sig)
}

// Tamper mutates a frame in place and reports whether it changed anything.
type Tamper func(f *media.Frame) bool

// BlackFrames is the paper's proof-of-concept payload: replace the video
// content with black frames while keeping size, sequence and timestamps so
// neither endpoint notices at the protocol level.
func BlackFrames() Tamper {
	return func(f *media.Frame) bool {
		for i := range f.Payload {
			f.Payload[i] = 0
		}
		return true
	}
}

// ReplacePayload substitutes attacker-chosen content.
func ReplacePayload(content []byte) Tamper {
	return func(f *media.Frame) bool {
		f.Payload = append([]byte(nil), content...)
		return true
	}
}

// InterceptorStats count what the attacker saw and changed.
type InterceptorStats struct {
	Connections    atomic.Int64
	FramesSeen     atomic.Int64
	FramesTampered atomic.Int64
	SignedSeen     atomic.Int64
}

// InterceptorConfig configures the man-in-the-middle.
type InterceptorConfig struct {
	// Target is the genuine server address the victim believes it talks
	// to (the ARP-spoofing attacker transparently forwards there).
	Target string
	// Tamper rewrites plaintext frames; nil relays untouched.
	Tamper Tamper
	// TamperSigned also rewrites signed frames. The attacker cannot
	// re-sign, so this demonstrates the defense: the rewritten frame
	// fails verification downstream.
	TamperSigned bool
}

// Interceptor is the §7.1 attacker process.
type Interceptor struct {
	cfg   InterceptorConfig
	stats InterceptorStats

	mu     sync.Mutex
	ln     net.Listener
	closed bool
	wg     sync.WaitGroup
}

// NewInterceptor builds an Interceptor.
func NewInterceptor(cfg InterceptorConfig) *Interceptor {
	return &Interceptor{cfg: cfg}
}

// Stats exposes the attack counters.
func (ic *Interceptor) Stats() *InterceptorStats { return &ic.stats }

// Listen starts the MITM on addr; victims connecting there are relayed to
// the target with frames rewritten.
func (ic *Interceptor) Listen(ctx context.Context, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("security: interceptor listen: %w", err)
	}
	ic.mu.Lock()
	ic.ln = ln
	ic.mu.Unlock()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	go ic.acceptLoop(ln)
	return ln, nil
}

func (ic *Interceptor) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		ic.stats.Connections.Add(1)
		ic.wg.Add(1)
		go func() {
			defer ic.wg.Done()
			ic.handle(conn)
		}()
	}
}

// Close stops the interceptor.
func (ic *Interceptor) Close() error {
	ic.mu.Lock()
	ic.closed = true
	ln := ic.ln
	ic.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	ic.wg.Wait()
	return err
}

func (ic *Interceptor) handle(victim net.Conn) {
	defer victim.Close()
	upstream, err := net.Dial("tcp", ic.cfg.Target)
	if err != nil {
		return
	}
	defer upstream.Close()
	done := make(chan struct{}, 2)
	// Tamper both directions: broadcaster-side attacks rewrite uploads,
	// viewer-side attacks rewrite downloads. Frames only flow one way on
	// a given connection, so this covers both §7.1 scenarios.
	go func() { ic.relay(upstream, victim); done <- struct{}{} }()
	go func() { ic.relay(victim, upstream); done <- struct{}{} }()
	<-done
}

// relay copies protocol messages from src to dst, rewriting frames.
func (ic *Interceptor) relay(dst io.Writer, src io.Reader) {
	for {
		msg, err := wire.ReadMessage(src)
		if err != nil {
			return
		}
		switch msg.Type {
		case wire.MsgFrame:
			ic.stats.FramesSeen.Add(1)
			if ic.cfg.Tamper != nil {
				if f, _, err := media.UnmarshalFrame(msg.Body); err == nil {
					if ic.cfg.Tamper(&f) {
						msg.Body = media.MarshalFrame(nil, &f)
						ic.stats.FramesTampered.Add(1)
					}
				}
			}
		case wire.MsgSignedFrame:
			ic.stats.FramesSeen.Add(1)
			ic.stats.SignedSeen.Add(1)
			if ic.cfg.Tamper != nil && ic.cfg.TamperSigned {
				if fb, sig, err := wire.UnmarshalSignedFrame(msg.Body); err == nil {
					if f, _, err := media.UnmarshalFrame(fb); err == nil && ic.cfg.Tamper(&f) {
						// The attacker cannot forge the
						// signature; it re-attaches the old
						// one, which will fail verification.
						if body, err := wire.MarshalSignedFrame(media.MarshalFrame(nil, &f), sig); err == nil {
							msg.Body = body
							ic.stats.FramesTampered.Add(1)
						}
					}
				}
			}
		}
		if err := wire.WriteMessage(dst, msg); err != nil {
			return
		}
	}
}

// ErrTampered reports that a received frame failed its integrity check.
var ErrTampered = errors.New("security: frame failed verification")

// AuditFrames compares sent and received payload patterns, returning how
// many were altered in flight — the validation step of the paper's
// proof-of-concept (Figure 18's black screen).
func AuditFrames(sent, received []media.Frame) (tampered int) {
	n := len(sent)
	if len(received) < n {
		n = len(received)
	}
	for i := 0; i < n; i++ {
		if !equalBytes(sent[i].Payload, received[i].Payload) {
			tampered++
		}
	}
	return tampered
}

func equalBytes(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
