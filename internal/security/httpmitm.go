package security

import (
	"crypto/ed25519"
	"io"
	"net/http"
	"strings"
	"sync/atomic"

	"repro/internal/media"
)

// The §7.1 attack applies to both delivery paths: "the attacker can modify
// the RTMP packets or HLS chunks using a similar approach". HTTPInterceptor
// is the HLS-side man-in-the-middle: a transparent proxy on the viewer's
// network that rewrites chunk downloads in flight.

// HTTPInterceptorStats count the HLS attack's activity.
type HTTPInterceptorStats struct {
	Requests       atomic.Int64
	ChunksSeen     atomic.Int64
	ChunksTampered atomic.Int64
}

// HTTPInterceptor rewrites HLS chunk responses passing through it.
type HTTPInterceptor struct {
	// Target is the genuine edge base URL (scheme://host:port).
	Target string
	// Tamper rewrites frames inside chunks; nil relays untouched.
	Tamper Tamper
	// Client performs upstream fetches; defaults to http.DefaultClient.
	Client *http.Client

	stats HTTPInterceptorStats
}

// Stats exposes the counters.
func (h *HTTPInterceptor) Stats() *HTTPInterceptorStats { return &h.stats }

func (h *HTTPInterceptor) client() *http.Client {
	if h.Client != nil {
		return h.Client
	}
	return http.DefaultClient
}

// ServeHTTP implements the transparent proxy.
func (h *HTTPInterceptor) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.stats.Requests.Add(1)
	req, err := http.NewRequestWithContext(r.Context(), r.Method, h.Target+r.URL.RequestURI(), r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	resp, err := h.client().Do(req)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadGateway)
		return
	}
	if resp.StatusCode == http.StatusOK && isChunkPath(r.URL.Path) && h.Tamper != nil {
		if chunk, err := media.UnmarshalChunk(body); err == nil {
			h.stats.ChunksSeen.Add(1)
			changed := false
			for i := range chunk.Frames {
				// The attacker rewrites payloads; it cannot forge
				// the embedded §7.2 signatures, which now cover
				// stale content.
				if h.Tamper(&chunk.Frames[i]) {
					changed = true
				}
			}
			if changed {
				body = media.MarshalChunk(chunk)
				h.stats.ChunksTampered.Add(1)
			}
		}
	}
	for k, vs := range resp.Header {
		if strings.EqualFold(k, "Content-Length") {
			continue
		}
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := w.Write(body); err != nil {
		return
	}
}

func isChunkPath(p string) bool {
	return strings.Contains(p, "/chunk/")
}

// VerifyChunk checks every signed frame in a chunk against the broadcaster
// key, returning (verified, tampered, unsigned) counts. A §7.2-protected
// viewer treats tampered > 0 or unsigned > 0 on a signed stream as an
// attack indicator.
func VerifyChunk(pub ed25519.PublicKey, c *media.Chunk) (verified, tampered, unsigned int) {
	for i := range c.Frames {
		f := &c.Frames[i]
		if len(f.Sig) != media.FrameSigSize {
			unsigned++
			continue
		}
		if ed25519.Verify(pub, f.UnsignedBytes(), f.Sig) {
			verified++
		} else {
			tampered++
		}
	}
	return verified, tampered, unsigned
}
