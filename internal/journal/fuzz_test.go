package journal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzRecordRoundTrip: any (type, id, payload) triple must survive
// encode → decode byte-identically, and every decode of the encoding's
// prefixes must fail cleanly (truncation) rather than mis-parse.
func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(uint8(RecordCreate), "b1", []byte(nil))
	f.Add(uint8(RecordSeal), "broadcast-with-long-id", []byte("payload"))
	f.Add(uint8(RecordEnd), "", []byte{})
	f.Add(uint8(255), "x", bytes.Repeat([]byte{0xAA}, 1024))
	// Control-plane records: JSON payloads under the same framing.
	f.Add(uint8(RecordCtrlRegister), "", []byte(`{"id":7,"name":"alice"}`))
	f.Add(uint8(RecordCtrlStart), "bcast-1", []byte(`{"token":"t0k","broadcaster":7,"started_at":123}`))
	f.Add(uint8(RecordCtrlJoin), "bcast-1", []byte(`{"user_id":9,"at":456,"viewer_token":"vt"}`))
	f.Fuzz(func(t *testing.T, typ uint8, id string, payload []byte) {
		if len(id) > 1<<16-1 {
			id = id[:1<<16-1]
		}
		in := Record{Type: RecordType(typ), BroadcastID: id, Payload: payload}
		enc := AppendRecord(nil, in)
		out, n, err := DecodeRecord(enc)
		if err != nil {
			t.Fatalf("decode of fresh encoding failed: %v", err)
		}
		if n != len(enc) {
			t.Fatalf("decode consumed %d of %d bytes", n, len(enc))
		}
		if out.Type != in.Type || out.BroadcastID != in.BroadcastID || !bytes.Equal(out.Payload, in.Payload) {
			t.Fatalf("round trip mismatch: in %+v out %+v", in, out)
		}
		// Every strict prefix is a torn write: it must decode as truncated
		// (or, when the length field itself is cut, corrupt) — never succeed.
		for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
			if cut <= 0 || cut >= len(enc) {
				continue
			}
			if _, _, err := DecodeRecord(enc[:cut]); err == nil {
				t.Fatalf("prefix of %d/%d bytes decoded successfully", cut, len(enc))
			}
		}
	})
}

// FuzzReplay: arbitrary bytes — including corrupted encodings of real
// records — must never panic Replay, and the stats must stay internally
// consistent (valid + discarded = total, records only from the valid prefix).
func FuzzReplay(f *testing.F) {
	clean := AppendRecord(nil, Record{Type: RecordCreate, BroadcastID: "b"})
	clean = AppendRecord(clean, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("chunk")})
	f.Add([]byte(nil))
	f.Add(clean)
	f.Add(clean[:len(clean)-3])
	corrupt := append([]byte(nil), clean...)
	corrupt[len(corrupt)-1] ^= 1
	f.Add(corrupt)
	// A control-plane journal stream, clean and with a torn tail: the
	// same truncate-and-continue contract covers both record spaces.
	ctrl := AppendRecord(nil, Record{Type: RecordCtrlRegister, Payload: []byte(`{"id":1}`)})
	ctrl = AppendRecord(ctrl, Record{Type: RecordCtrlStart, BroadcastID: "bcast-1", Payload: []byte(`{"token":"t","broadcaster":1}`)})
	ctrl = AppendRecord(ctrl, Record{Type: RecordCtrlEnd, BroadcastID: "bcast-1", Payload: []byte(`{"ended_at":9}`)})
	f.Add(ctrl)
	f.Add(ctrl[:len(ctrl)-5])
	f.Fuzz(func(t *testing.T, data []byte) {
		n := 0
		st, err := Replay(data, func(r Record) error {
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("replay with nil-error callback returned %v", err)
		}
		if st.Records != n {
			t.Fatalf("stats.Records = %d, callback ran %d times", st.Records, n)
		}
		if st.ValidBytes+st.DiscardedBytes != len(data) {
			t.Fatalf("valid %d + discarded %d != total %d", st.ValidBytes, st.DiscardedBytes, len(data))
		}
		if st.TailCorrupt != (st.DiscardedBytes > 0) {
			t.Fatalf("TailCorrupt = %v with %d discarded bytes", st.TailCorrupt, st.DiscardedBytes)
		}
		// The valid prefix must re-replay to the same record count.
		st2, err := Replay(data[:st.ValidBytes], func(Record) error { return nil })
		if err != nil || st2.Records != st.Records || st2.TailCorrupt {
			t.Fatalf("valid prefix replay: %+v (err %v), want %d clean records", st2, err, st.Records)
		}
		// Appending a fresh record after truncating the damaged tail must
		// yield a journal that replays every old record plus the new one.
		if errors.Is(err, nil) {
			ext := AppendRecord(append([]byte(nil), data[:st.ValidBytes]...), Record{Type: RecordEnd, BroadcastID: "b"})
			st3, err := Replay(ext, func(Record) error { return nil })
			if err != nil || st3.Records != st.Records+1 || st3.TailCorrupt {
				t.Fatalf("append after truncate: %+v (err %v), want %d clean records", st3, err, st.Records+1)
			}
		}
	})
}
