package journal

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/metrics"
	"repro/internal/testutil"
)

func TestRecordRoundTrip(t *testing.T) {
	recs := []Record{
		{Type: RecordCreate, BroadcastID: "b1"},
		{Type: RecordSeal, BroadcastID: "b1", Payload: []byte("chunk-bytes")},
		{Type: RecordEnd, BroadcastID: "b1"},
		{Type: RecordSeal, BroadcastID: "", Payload: nil},
	}
	var buf []byte
	for _, r := range recs {
		buf = AppendRecord(buf, r)
	}
	off := 0
	for i, want := range recs {
		got, n, err := DecodeRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Type != want.Type || got.BroadcastID != want.BroadcastID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got, want)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("decoded %d of %d bytes", off, len(buf))
	}
}

func TestDecodeRecordTruncated(t *testing.T) {
	full := AppendRecord(nil, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("payload")})
	for cut := 1; cut < len(full); cut++ {
		_, _, err := DecodeRecord(full[:cut])
		if !errors.Is(err, ErrTruncated) && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut=%d: err = %v, want truncated or corrupt", cut, err)
		}
	}
}

func TestDecodeRecordCorrupt(t *testing.T) {
	full := AppendRecord(nil, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("payload")})
	for i := 4; i < len(full); i++ { // flipping length bytes may read as truncation instead
		bad := append([]byte(nil), full...)
		bad[i] ^= 0x40
		if _, _, err := DecodeRecord(bad); err == nil {
			t.Fatalf("bit flip at %d went undetected", i)
		}
	}
}

// TestReplayTailDiscard: a journal with a damaged tail replays its intact
// prefix and reports exactly what was discarded.
func TestReplayTailDiscard(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, Record{Type: RecordCreate, BroadcastID: "b"})
	buf = AppendRecord(buf, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("c0")})
	valid := len(buf)
	buf = AppendRecord(buf, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("c1")})

	cases := map[string][]byte{
		"truncated": buf[:valid+9],
		"corrupt": func() []byte {
			bad := append([]byte(nil), buf...)
			bad[len(bad)-1] ^= 1
			return bad
		}(),
	}
	for name, data := range cases {
		var got []Record
		st, err := Replay(data, func(r Record) error {
			got = append(got, r)
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if st.Records != 2 || len(got) != 2 {
			t.Fatalf("%s: replayed %d records, want 2", name, st.Records)
		}
		if !st.TailCorrupt {
			t.Fatalf("%s: TailCorrupt not reported", name)
		}
		if st.ValidBytes != valid {
			t.Fatalf("%s: ValidBytes = %d, want %d", name, st.ValidBytes, valid)
		}
		if st.DiscardedBytes != len(data)-valid {
			t.Fatalf("%s: DiscardedBytes = %d, want %d", name, st.DiscardedBytes, len(data)-valid)
		}
	}
}

func TestReplayCleanJournal(t *testing.T) {
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = AppendRecord(buf, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte{byte(i)}})
	}
	st, err := Replay(buf, func(Record) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != 5 || st.TailCorrupt || st.DiscardedBytes != 0 || st.ValidBytes != len(buf) {
		t.Fatalf("stats = %+v", st)
	}
}

func TestReplayCallbackError(t *testing.T) {
	buf := AppendRecord(nil, Record{Type: RecordCreate, BroadcastID: "b"})
	boom := errors.New("boom")
	if _, err := Replay(buf, func(Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}

// TestWriterGroupCommit: every record Append acknowledged before Close is in
// the backend afterward, in order, and the batch count shows group commit
// coalesced at least some appends.
func TestWriterGroupCommit(t *testing.T) {
	testutil.CheckGoroutines(t)
	reg := metrics.NewRegistry()
	mem := NewMem()
	w := NewWriter(mem, WriterConfig{Metrics: reg})
	const n = 200
	for i := 0; i < n; i++ {
		if err := w.Append(Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte{byte(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(Record{Type: RecordEnd, BroadcastID: "b"}); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close: %v, want ErrClosed", err)
	}
	data, err := mem.Load()
	if err != nil {
		t.Fatal(err)
	}
	i := 0
	st, err := Replay(data, func(r Record) error {
		if len(r.Payload) != 1 || r.Payload[0] != byte(i) {
			t.Fatalf("record %d out of order: payload %v", i, r.Payload)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n || st.TailCorrupt {
		t.Fatalf("stats = %+v, want %d clean records", st, n)
	}
	var appends, batches int64
	for _, c := range reg.Snapshot().Counters {
		switch c.Name {
		case "journal_appends_total":
			appends = c.Value
		case "journal_batches_total":
			batches = c.Value
		}
	}
	if appends != n {
		t.Fatalf("journal_appends_total = %d, want %d", appends, n)
	}
	if batches == 0 || batches > n {
		t.Fatalf("journal_batches_total = %d, want within (0, %d]", batches, n)
	}
}

func TestMemBackendTailHelpers(t *testing.T) {
	mem := NewMem()
	buf := AppendRecord(nil, Record{Type: RecordCreate, BroadcastID: "b"})
	if err := mem.Append(buf); err != nil {
		t.Fatal(err)
	}
	mem.CorruptTail(2)
	data, _ := mem.Load()
	st, err := Replay(data, func(Record) error { return nil })
	if err != nil || st.Records != 0 || !st.TailCorrupt {
		t.Fatalf("corrupted journal replayed as %+v (err %v)", st, err)
	}
	if err := mem.Truncate(int64(st.ValidBytes)); err != nil {
		t.Fatal(err)
	}
	if mem.Len() != 0 {
		t.Fatalf("Len = %d after truncate to valid prefix", mem.Len())
	}
}

// TestFileBackend: append, reload, truncate, and append-after-truncate all
// behave like the in-memory backend.
func TestFileBackend(t *testing.T) {
	path := filepath.Join(t.TempDir(), "origin.wal")
	fb, err := OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	r1 := AppendRecord(nil, Record{Type: RecordCreate, BroadcastID: "b"})
	r2 := AppendRecord(nil, Record{Type: RecordSeal, BroadcastID: "b", Payload: []byte("c0")})
	if err := fb.Append(r1); err != nil {
		t.Fatal(err)
	}
	if err := fb.Append(r2); err != nil {
		t.Fatal(err)
	}
	fb.Close()

	// Reopen, as a restarted process would.
	fb, err = OpenFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := fb.Load()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, append(append([]byte(nil), r1...), r2...)) {
		t.Fatal("reloaded journal differs from appended bytes")
	}
	if err := fb.Truncate(int64(len(r1))); err != nil {
		t.Fatal(err)
	}
	r3 := AppendRecord(nil, Record{Type: RecordEnd, BroadcastID: "b"})
	if err := fb.Append(r3); err != nil {
		t.Fatal(err)
	}
	data, err = fb.Load()
	if err != nil {
		t.Fatal(err)
	}
	var types []RecordType
	st, err := Replay(data, func(r Record) error {
		types = append(types, r.Type)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.TailCorrupt || st.Records != 2 {
		t.Fatalf("stats = %+v, want 2 clean records", st)
	}
	if types[0] != RecordCreate || types[1] != RecordEnd {
		t.Fatalf("types = %v", types)
	}
}
