// Package journal is the origin's write-ahead log: a length-prefixed,
// CRC-checked record stream that survives a process crash and is replayed on
// restart to rehydrate broadcast state (DESIGN.md §6.2). The paper's delivery
// path hangs every broadcast off a single Wowza origin (§4.1); journaling the
// three state transitions that matter — broadcast create, chunk seal,
// broadcast end — is what turns that single point of failure into a node that
// can crash and come back mid-broadcast.
//
// Records are framed as
//
//	length  uint32  // bytes after this field (crc through payload)
//	crc     uint32  // IEEE CRC-32 over type, idLen, id, payload
//	type    uint8
//	idLen   uint16
//	id      [idLen]byte
//	payload [...]byte
//
// so a reader can always distinguish a clean end of journal from a torn or
// corrupted tail: a short read is truncation, a CRC mismatch is corruption,
// and Replay discards everything from the first damaged record on — the
// records before it were durable, the ones after it cannot be trusted.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// RecordType identifies one journaled state transition.
type RecordType uint8

// The three origin state transitions worth making durable. Frame arrivals are
// deliberately NOT journaled: the //livesim:hotpath ingest budget (2
// allocs/frame, DESIGN.md §5a) leaves no room for per-frame durability, and
// sealing is the moment frames become externally visible anyway — a crash
// loses at most one partial chunk, which the reconnecting publisher re-sends
// by sequence.
const (
	// RecordCreate marks the first frame of a broadcast reaching the origin.
	RecordCreate RecordType = iota + 1
	// RecordSeal carries one sealed chunk (media.MarshalChunk payload).
	RecordSeal
	// RecordEnd marks a clean broadcast end.
	RecordEnd
)

// Control-plane state transitions (DESIGN.md §6.3). The control journal
// shares the framing with the origin journal but lives in its own backend,
// so the type spaces never mix in one stream; the offset just keeps them
// visually distinct in hex dumps. BroadcastID carries the broadcast these
// records belong to (empty for CtrlRegister, which is keyed by user);
// payloads are the JSON codecs in internal/control.
const (
	// RecordCtrlRegister journals one user registration.
	RecordCtrlRegister RecordType = iota + 16
	// RecordCtrlStart journals a broadcast start: token, broadcaster,
	// origin assignment, addresses, location, private allow-list.
	RecordCtrlStart
	// RecordCtrlEnd journals a broadcast end (clean or forced).
	RecordCtrlEnd
	// RecordCtrlKey journals a broadcaster public-key registration (§7.2).
	RecordCtrlKey
	// RecordCtrlJoin journals one viewer join (and, for private
	// broadcasts, the minted per-viewer token the origin validates).
	RecordCtrlJoin
)

// Tenancy state transitions (DESIGN.md §11). Same stream as the control
// records above, offset again so the ranges stay visually distinct.
// BroadcastID is reused to carry the tenant ID (tenant rows, usage rollups)
// or the API key (issue/revoke); payloads are JSON codecs in
// internal/control.
const (
	// RecordCtrlTenant journals a tenant creation: the full tenant row,
	// replayed as an idempotent upsert.
	RecordCtrlTenant RecordType = iota + 32
	// RecordCtrlTenantPlan journals a plan change for an existing tenant.
	RecordCtrlTenantPlan
	// RecordCtrlTenantStatus journals a suspend or resume.
	RecordCtrlTenantStatus
	// RecordCtrlKeyIssue journals an API-key issuance.
	RecordCtrlKeyIssue
	// RecordCtrlKeyRevoke journals an API-key revocation.
	RecordCtrlKeyRevoke
	// RecordCtrlUsage journals one per-tenant per-day usage rollup. The
	// payload carries ABSOLUTE cumulative day totals, never deltas: replay
	// assigns, so a torn tail can lose the newest rollup but can never
	// double-count an older one.
	RecordCtrlUsage
)

// Record is one journal entry.
type Record struct {
	Type        RecordType
	BroadcastID string
	// Payload is type-specific: the marshalled chunk for RecordSeal, empty
	// for RecordCreate and RecordEnd.
	Payload []byte
}

// MaxRecord bounds a decoded record body against corrupted length prefixes.
// It comfortably holds the largest legitimate payload (one marshalled chunk,
// itself bounded by media.MaxFramePayload per frame).
const MaxRecord = 64 << 20

// recordHeaderSize is the fixed framing overhead: length + crc + type + idLen.
const recordHeaderSize = 4 + 4 + 1 + 2

// ErrTruncated reports a record cut short — the torn tail a crash mid-append
// leaves behind.
var ErrTruncated = errors.New("journal: truncated record")

// ErrCorrupt reports a record whose CRC or framing does not check out.
var ErrCorrupt = errors.New("journal: corrupt record")

// AppendRecord appends the framed form of r to dst and returns the extended
// slice.
func AppendRecord(dst []byte, r Record) []byte {
	body := 1 + 2 + len(r.BroadcastID) + len(r.Payload)
	var hdr [recordHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(4+body)) // crc + body
	hdr[8] = byte(r.Type)
	binary.BigEndian.PutUint16(hdr[9:11], uint16(len(r.BroadcastID)))
	start := len(dst)
	dst = append(dst, hdr[:]...)
	dst = append(dst, r.BroadcastID...)
	dst = append(dst, r.Payload...)
	crc := crc32.ChecksumIEEE(dst[start+8:])
	binary.BigEndian.PutUint32(dst[start+4:start+8], crc)
	return dst
}

// DecodeRecord parses one record from the head of data, returning the record
// and the encoded length consumed. ErrTruncated means data ends mid-record;
// ErrCorrupt means the framing or CRC is damaged. The returned record's
// BroadcastID and Payload are copied out of data.
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < 8 {
		return Record{}, 0, ErrTruncated
	}
	n := binary.BigEndian.Uint32(data[0:4])
	if n < 4+1+2 || n > MaxRecord {
		return Record{}, 0, fmt.Errorf("%w: implausible length %d", ErrCorrupt, n)
	}
	total := 4 + int(n)
	if len(data) < total {
		return Record{}, 0, ErrTruncated
	}
	want := binary.BigEndian.Uint32(data[4:8])
	if got := crc32.ChecksumIEEE(data[8:total]); got != want {
		return Record{}, 0, fmt.Errorf("%w: crc mismatch", ErrCorrupt)
	}
	r := Record{Type: RecordType(data[8])}
	idLen := int(binary.BigEndian.Uint16(data[9:11]))
	if recordHeaderSize+idLen > total {
		return Record{}, 0, fmt.Errorf("%w: id overruns record", ErrCorrupt)
	}
	r.BroadcastID = string(data[recordHeaderSize : recordHeaderSize+idLen])
	if payload := data[recordHeaderSize+idLen : total]; len(payload) > 0 {
		r.Payload = append([]byte(nil), payload...)
	}
	return r, total, nil
}

// ReplayStats summarizes one Replay pass.
type ReplayStats struct {
	// Records is how many intact records were delivered to the callback.
	Records int
	// ValidBytes is the length of the intact prefix — the offset a recovering
	// origin truncates its backend to before appending new records, so a
	// damaged tail is not entombed in front of future appends.
	ValidBytes int
	// DiscardedBytes is what the damaged tail cost: len(data) − ValidBytes.
	DiscardedBytes int
	// TailCorrupt reports whether a damaged tail (truncated or corrupt) was
	// discarded.
	TailCorrupt bool
}

// Replay walks the journal from the start, invoking fn for each intact
// record. A truncated or corrupt record ends the walk: everything from it on
// is discarded and reported in the stats, not treated as an error — that is
// the expected shape of a journal whose process died mid-append. An error
// from fn aborts the walk and is returned as-is.
func Replay(data []byte, fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	off := 0
	for off < len(data) {
		r, n, err := DecodeRecord(data[off:])
		if err != nil {
			st.TailCorrupt = true
			break
		}
		if err := fn(r); err != nil {
			st.ValidBytes = off
			st.DiscardedBytes = len(data) - off
			return st, err
		}
		st.Records++
		off += n
	}
	st.ValidBytes = off
	st.DiscardedBytes = len(data) - off
	return st, nil
}
