package journal

import (
	"fmt"
	"io"
	"os"
	"sync"
)

// Backend is the byte store a journal writes to. Append receives one or more
// complete framed records per call (a group commit); Load returns the full
// journal for replay; Truncate discards everything past the intact prefix a
// replay identified, so a damaged tail never sits in front of future appends.
type Backend interface {
	Append(b []byte) error
	Load() ([]byte, error)
	Truncate(size int64) error
}

// Mem is an in-memory Backend for tests and the chaos harness. Beyond the
// interface it exposes tail-damage helpers so crash schedules can simulate a
// torn or corrupted final write.
type Mem struct {
	mu  sync.Mutex
	buf []byte
}

// NewMem returns an empty in-memory backend.
func NewMem() *Mem { return &Mem{} }

// Append implements Backend.
func (m *Mem) Append(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.buf = append(m.buf, b...)
	return nil
}

// Load implements Backend; the returned slice is a copy.
func (m *Mem) Load() ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]byte(nil), m.buf...), nil
}

// Truncate implements Backend.
func (m *Mem) Truncate(size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if size < 0 || size > int64(len(m.buf)) {
		return fmt.Errorf("journal: truncate %d outside journal of %d bytes", size, len(m.buf))
	}
	m.buf = m.buf[:size]
	return nil
}

// Len returns the journal size in bytes.
func (m *Mem) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.buf)
}

// CorruptTail flips the low bit of the last n bytes — the fault-injection
// stand-in for a disk write torn mid-sector. A no-op on an empty journal.
func (m *Mem) CorruptTail(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.buf) {
		n = len(m.buf)
	}
	for i := len(m.buf) - n; i < len(m.buf); i++ {
		m.buf[i] ^= 1
	}
}

// TruncateTail drops the last n bytes — a crash before the final write
// reached the disk.
func (m *Mem) TruncateTail(n int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if n > len(m.buf) {
		n = len(m.buf)
	}
	m.buf = m.buf[:len(m.buf)-n]
}

// File is a file-backed Backend for cmd/livesim: every group commit is one
// write followed by an fsync, so an acknowledged append survives a process
// crash.
type File struct {
	mu sync.Mutex
	f  *os.File
}

// OpenFile opens (creating if needed) the journal file at path.
func OpenFile(path string) (*File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("journal: open %s: %w", path, err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, fmt.Errorf("journal: seek %s: %w", path, err)
	}
	return &File{f: f}, nil
}

// Append implements Backend: one write, one fsync.
func (fb *File) Append(b []byte) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if _, err := fb.f.Write(b); err != nil {
		return fmt.Errorf("journal: append: %w", err)
	}
	if err := fb.f.Sync(); err != nil {
		return fmt.Errorf("journal: sync: %w", err)
	}
	return nil
}

// Load implements Backend.
func (fb *File) Load() ([]byte, error) {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return os.ReadFile(fb.f.Name())
}

// Truncate implements Backend.
func (fb *File) Truncate(size int64) error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	if err := fb.f.Truncate(size); err != nil {
		return fmt.Errorf("journal: truncate: %w", err)
	}
	if _, err := fb.f.Seek(size, io.SeekStart); err != nil {
		return fmt.Errorf("journal: seek: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (fb *File) Close() error {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.f.Close()
}
