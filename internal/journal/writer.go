package journal

import (
	"errors"
	"sync"

	"repro/internal/metrics"
)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("journal: writer closed")

// WriterConfig tunes a Writer.
type WriterConfig struct {
	// Queue is the append queue depth (default 256). Appends block when the
	// queue is full — backpressure, never silent loss.
	Queue int
	// Metrics is the registry the writer's counters register in; nil means
	// a private registry.
	Metrics *metrics.Registry
	// Labels are attached to every instrument (the origin passes its site).
	Labels []metrics.Label
	// Logf sinks append failures; nil discards.
	Logf func(format string, args ...interface{})
}

// Writer appends records to a Backend with group commit: callers enqueue
// encoded records onto a channel and a single background goroutine drains
// whatever has accumulated into one Backend.Append (one write + one fsync on
// the file backend). That keeps the durability cost off the caller — the
// //livesim:hotpath ingest path enqueues a sealed chunk and moves on — while
// batching bursts of records into a single sync.
type Writer struct {
	backend Backend

	mu     sync.RWMutex
	closed bool
	ch     chan []byte
	done   chan struct{}

	appends *metrics.Counter
	batches *metrics.Counter
	errs    *metrics.Counter
	logf    func(string, ...interface{})
}

// NewWriter starts a Writer appending to backend.
func NewWriter(backend Backend, cfg WriterConfig) *Writer {
	if cfg.Queue <= 0 {
		cfg.Queue = 256
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...interface{}) {}
	}
	w := &Writer{
		backend: backend,
		ch:      make(chan []byte, cfg.Queue),
		done:    make(chan struct{}),
		appends: reg.Counter("journal_appends_total", cfg.Labels...),
		batches: reg.Counter("journal_batches_total", cfg.Labels...),
		errs:    reg.Counter("journal_append_errors_total", cfg.Labels...),
		logf:    logf,
	}
	go w.run()
	return w
}

// Append enqueues one record for the next group commit. It blocks only when
// the queue is full (the background writer is behind by a whole queue of
// records) and fails only after Close.
func (w *Writer) Append(r Record) error {
	buf := AppendRecord(nil, r)
	w.mu.RLock()
	defer w.mu.RUnlock()
	if w.closed {
		return ErrClosed
	}
	// The send must stay under the RLock: Close flips closed and closes the
	// channel under the write lock, so the lock is exactly what makes
	// send-on-closed-channel impossible. Progress is guaranteed — run()
	// drains the channel until it is closed, so a send blocked on a full
	// queue always completes and Close (blocked on the write lock behind
	// this RLock) runs only after it.
	//lint:allow locksend the RLock is the send-vs-close guard; the drain goroutine guarantees progress
	w.ch <- buf
	w.appends.Inc()
	return nil
}

// Close drains every queued record into the backend and stops the writer.
// Records enqueued before Close are durable when it returns — which is why
// the origin's crash path closes the writer before wiping its state: the
// journal must hold everything the origin acknowledged.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		<-w.done
		return nil
	}
	w.closed = true
	close(w.ch)
	w.mu.Unlock()
	<-w.done
	return nil
}

// run is the group-commit loop: take one queued record, then opportunistically
// drain everything else already queued into the same batch, and hand the
// batch to the backend as a single append.
func (w *Writer) run() {
	defer close(w.done)
	for first := range w.ch {
		batch := first
	drain:
		for {
			select {
			case more, ok := <-w.ch:
				if !ok {
					break drain
				}
				batch = append(batch, more...)
			default:
				break drain
			}
		}
		if err := w.backend.Append(batch); err != nil {
			w.errs.Inc()
			w.logf("journal: append: %v", err)
			continue
		}
		w.batches.Inc()
	}
}
