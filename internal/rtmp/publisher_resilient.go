package rtmp

import (
	"context"
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"sync/atomic"
	"time"

	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/wire"
)

// PublishResilientConfig tunes PublishResilient.
type PublishResilientConfig struct {
	// Signer, when set, signs every frame (§7.2 defense).
	Signer ed25519.PrivateKey
	// TLS, when non-nil, publishes over RTMPS.
	TLS *tls.Config
	// Resolve re-reads the server address before each redial. A restarted
	// origin may come back on a different port; the control plane knows the
	// current one. Nil redials the original address.
	Resolve func() string
	// Backoff schedules redial delays; the zero value uses the resilience
	// defaults.
	Backoff resilience.Policy
	// MaxReconnects bounds redial attempts across the whole session (each
	// failed dial counts). Zero means 16; negative means unlimited.
	MaxReconnects int
	// DialTimeout bounds each dial plus handshake round-trip. Zero means 3s.
	DialTimeout time.Duration
	// BufferFrames is how many recent frames are retained for resume-by-
	// sequence replay after a reconnect. It should exceed the origin's
	// frames-per-chunk so every frame past the server's journal replay
	// floor — the last sealed chunk — is still on hand. Zero means 512.
	BufferFrames int
}

// ResilientPublisher is a broadcaster session that survives server crashes:
// when the transport dies mid-broadcast it redials with backoff, reads the
// server's resume floor from the handshake ack, and re-uploads every
// buffered frame at or past that floor before continuing — so a recovered
// origin re-seals identical chunks and the broadcast carries on under the
// same ID with no sequence gap. Methods are not safe for concurrent use,
// matching Publisher.
type ResilientPublisher struct {
	cfg         PublishResilientConfig
	addr        string
	broadcastID string
	token       string

	pub *Publisher
	// buf is a ring of recent frames (deep copies — the caller may reuse
	// payload buffers between Sends); next.Seq ordering is the caller's.
	buf   []media.Frame
	start int
	n     int

	reconnects atomic.Int64
}

// PublishResilient opens a broadcaster session with auto-reconnect. The
// first dial is synchronous so immediate rejections (bad token, duplicate)
// surface to the caller.
func PublishResilient(ctx context.Context, addr, broadcastID, token string, cfg PublishResilientConfig) (*ResilientPublisher, error) {
	if cfg.MaxReconnects == 0 {
		cfg.MaxReconnects = 16
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 3 * time.Second
	}
	if cfg.BufferFrames == 0 {
		cfg.BufferFrames = 512
	}
	rp := &ResilientPublisher{
		cfg:         cfg,
		addr:        addr,
		broadcastID: broadcastID,
		token:       token,
		buf:         make([]media.Frame, cfg.BufferFrames),
	}
	pub, err := rp.dial(ctx)
	if err != nil {
		return nil, err
	}
	rp.pub = pub
	return rp, nil
}

// dial opens one broadcaster session at the current address.
func (rp *ResilientPublisher) dial(ctx context.Context) (*Publisher, error) {
	addr := rp.addr
	if rp.cfg.Resolve != nil {
		if a := rp.cfg.Resolve(); a != "" {
			addr = a
		}
	}
	conn, ack, err := dialAndHandshakeTLS(ctx, addr, wire.Handshake{
		Role: wire.RoleBroadcaster, BroadcastID: rp.broadcastID, Token: rp.token,
	}, rp.cfg.TLS, nil, rp.cfg.DialTimeout)
	if err != nil {
		return nil, err
	}
	return &Publisher{conn: conn, signer: rp.cfg.Signer, resumeSeq: ack.ResumeSeq}, nil
}

// buffer retains a deep copy of f in the resume ring, evicting the oldest
// frame when full.
func (rp *ResilientPublisher) buffer(f *media.Frame) {
	cp := *f
	cp.Payload = append([]byte(nil), f.Payload...)
	cp.Sig = nil // re-signed on resend
	if rp.n < len(rp.buf) {
		rp.buf[(rp.start+rp.n)%len(rp.buf)] = cp
		rp.n++
		return
	}
	rp.buf[rp.start] = cp
	rp.start = (rp.start + 1) % len(rp.buf)
}

// Send uploads one frame, redialing and resuming on transport failure. The
// frame is buffered first, so a crash between buffer and write still replays
// it after reconnecting.
func (rp *ResilientPublisher) Send(ctx context.Context, f *media.Frame) error {
	rp.buffer(f)
	if rp.pub != nil {
		if err := rp.pub.Send(f); err == nil {
			return nil
		}
		rp.pub.Close()
		rp.pub = nil
	}
	return rp.redialAndResend(ctx)
}

// terminalRejection reports a handshake answer that redialing cannot fix.
// StatusUnavailable (origin recovering) and StatusDuplicate (a stale
// registration the server has not yet reaped) both clear up on their own.
func terminalRejection(err error) bool {
	var rej *ErrRejected
	if !errors.As(err, &rej) {
		return false
	}
	return rej.Status != wire.StatusUnavailable && rej.Status != wire.StatusDuplicate
}

// redialAndResend re-establishes the session and re-uploads every buffered
// frame the server's resume floor asks for.
func (rp *ResilientPublisher) redialAndResend(ctx context.Context) error {
	redials := 0
	for {
		if rp.cfg.MaxReconnects >= 0 && redials >= rp.cfg.MaxReconnects {
			return errors.New("rtmp: publisher reconnect budget exhausted")
		}
		if err := resilience.SleepCtx(ctx, rp.cfg.Backoff.Delay(redials)); err != nil {
			return err
		}
		redials++
		pub, err := rp.dial(ctx)
		if err != nil {
			if terminalRejection(err) || errors.Is(err, ErrFull) {
				return err
			}
			continue
		}
		if err := rp.resend(pub); err != nil {
			// The session died again mid-replay; keep redialing on the
			// same budget.
			pub.Close()
			continue
		}
		rp.pub = pub
		rp.reconnects.Add(1)
		return nil
	}
}

// resend uploads every buffered frame at or past the server's resume floor,
// oldest first.
func (rp *ResilientPublisher) resend(pub *Publisher) error {
	floor := pub.ResumeSeq()
	for i := 0; i < rp.n; i++ {
		f := &rp.buf[(rp.start+i)%len(rp.buf)]
		if f.Seq < floor {
			continue
		}
		if err := pub.Send(f); err != nil {
			return err
		}
	}
	return nil
}

// End announces a clean end of broadcast, redialing first if the transport
// is down, and closes the session.
func (rp *ResilientPublisher) End(ctx context.Context) error {
	if rp.pub == nil {
		if err := rp.redialAndResend(ctx); err != nil {
			return err
		}
	}
	err := rp.pub.End()
	rp.pub = nil
	return err
}

// Close aborts the session without an end marker.
func (rp *ResilientPublisher) Close() error {
	if rp.pub == nil {
		return nil
	}
	err := rp.pub.Close()
	rp.pub = nil
	return err
}

// Reconnects returns how many times the session re-established transport.
func (rp *ResilientPublisher) Reconnects() int64 { return rp.reconnects.Load() }
