package rtmp

import (
	"context"
	"crypto/ed25519"
	"sync"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/testutil"
)

// startServer launches a server on an ephemeral port and returns its address
// and a shutdown func.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	// Registered before the shutdown cleanup below so it runs after it
	// (t.Cleanup is LIFO): every server goroutine must be gone by then.
	testutil.CheckGoroutines(t)
	s := NewServer(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cancel()
		s.Close()
	})
	return s, ln.Addr().String()
}

func testFrames(n int) []media.Frame {
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(99))
	base := time.Now()
	frames := make([]media.Frame, n)
	for i := range frames {
		frames[i] = enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
	}
	return frames
}

func TestPublishSubscribeRoundtrip(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	ctx := context.Background()

	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	view, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()

	frames := testFrames(10)
	for i := range frames {
		if err := pub.Send(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := pub.End(); err != nil {
		t.Fatal(err)
	}

	var got []ReceivedFrame
	for rf := range view.Frames() {
		got = append(got, rf)
	}
	if len(got) != 10 {
		t.Fatalf("received %d frames, want 10", len(got))
	}
	for i, rf := range got {
		if rf.Frame.Seq != frames[i].Seq {
			t.Fatalf("frame %d seq = %d, want %d", i, rf.Frame.Seq, frames[i].Seq)
		}
		if rf.ReceivedAt.IsZero() {
			t.Fatal("missing receive timestamp")
		}
		if rf.Signed {
			t.Fatal("unsigned stream delivered signed frames")
		}
	}
	if err := view.Err(); err != nil {
		t.Fatalf("viewer error after clean end: %v", err)
	}
}

func TestViewerCapSendsOverflowToHLS(t *testing.T) {
	s, addr := startServer(t, ServerConfig{ViewerCap: 3})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.End()

	var viewers []*Viewer
	for i := 0; i < 3; i++ {
		v, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{})
		if err != nil {
			t.Fatalf("viewer %d: %v", i, err)
		}
		defer v.Close()
		viewers = append(viewers, v)
	}
	if _, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{}); err != ErrFull {
		t.Fatalf("4th viewer error = %v, want ErrFull", err)
	}
	if got := s.Stats().ViewersRejected; got != 1 {
		t.Fatalf("ViewersRejected = %d, want 1", got)
	}
	_ = viewers
}

func TestSubscribeUnknownBroadcast(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	_, err := Subscribe(context.Background(), addr, "missing", "tok", ViewerOptions{})
	rej, ok := err.(*ErrRejected)
	if !ok || rej.Status != "not-found" {
		t.Fatalf("error = %v, want not-found rejection", err)
	}
}

func TestAuthRejection(t *testing.T) {
	auth := AuthFunc(func(id, token, role string) bool { return token == "good" })
	_, addr := startServer(t, ServerConfig{Auth: auth})
	ctx := context.Background()
	if _, err := Publish(ctx, addr, "b1", "bad", nil); err == nil {
		t.Fatal("bad token accepted")
	}
	pub, err := Publish(ctx, addr, "b1", "good", nil)
	if err != nil {
		t.Fatal(err)
	}
	pub.End()
}

func TestDuplicateBroadcasterRejected(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.End()
	if _, err := Publish(ctx, addr, "b1", "tok", nil); err == nil {
		t.Fatal("duplicate broadcaster accepted")
	}
}

func TestFanOutToManyViewers(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}

	const nViewers = 20
	var wg sync.WaitGroup
	counts := make([]int, nViewers)
	for i := 0; i < nViewers; i++ {
		v, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{})
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int, v *Viewer) {
			defer wg.Done()
			defer v.Close()
			for range v.Frames() {
				counts[i]++
			}
		}(i, v)
	}

	frames := testFrames(25)
	for i := range frames {
		if err := pub.Send(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	wg.Wait()
	for i, c := range counts {
		if c != 25 {
			t.Fatalf("viewer %d received %d/25 frames", i, c)
		}
	}
}

func TestTapObservesFrames(t *testing.T) {
	var mu sync.Mutex
	var tapped []uint64
	tap := func(id string, f media.Frame, at time.Time) {
		mu.Lock()
		tapped = append(tapped, f.Seq)
		mu.Unlock()
		if id != "b1" || at.IsZero() {
			t.Errorf("tap got id=%s at=%v", id, at)
		}
	}
	_, addr := startServer(t, ServerConfig{Tap: tap})
	pub, err := Publish(context.Background(), addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	frames := testFrames(5)
	for i := range frames {
		pub.Send(&frames[i])
	}
	pub.End()
	deadline := time.After(2 * time.Second)
	for {
		mu.Lock()
		n := len(tapped)
		mu.Unlock()
		if n == 5 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("tap saw %d/5 frames", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestOnEndCallback(t *testing.T) {
	done := make(chan string, 1)
	_, addr := startServer(t, ServerConfig{OnEnd: func(id string) { done <- id }})
	pub, err := Publish(context.Background(), addr, "b9", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	pub.End()
	select {
	case id := <-done:
		if id != "b9" {
			t.Fatalf("OnEnd got %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnEnd never fired")
	}
}

type keyAuth struct {
	pub ed25519.PublicKey
}

func (keyAuth) Authorize(string, string, string) bool { return true }
func (a keyAuth) PublicKey(string) ed25519.PublicKey  { return a.pub }

func TestSignedStreamVerifies(t *testing.T) {
	pubKey, privKey, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	_, addr := startServer(t, ServerConfig{Auth: keyAuth{pub: pubKey}})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", privKey)
	if err != nil {
		t.Fatal(err)
	}
	view, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{PubKey: pubKey})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	frames := testFrames(5)
	for i := range frames {
		if err := pub.Send(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	n := 0
	for rf := range view.Frames() {
		if !rf.Signed || !rf.Verified {
			t.Fatalf("frame %d: signed=%v verified=%v", n, rf.Signed, rf.Verified)
		}
		n++
	}
	if n != 5 {
		t.Fatalf("received %d/5 signed frames", n)
	}
}

func TestSignedBroadcastRejectsUnsignedFrames(t *testing.T) {
	pubKey, _, err := ed25519.GenerateKey(nil)
	if err != nil {
		t.Fatal(err)
	}
	s, addr := startServer(t, ServerConfig{Auth: keyAuth{pub: pubKey}})
	ctx := context.Background()
	// Publisher "forgets" to sign: the downgrade attack.
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	view, err := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{PubKey: pubKey})
	if err != nil {
		t.Fatal(err)
	}
	defer view.Close()
	frames := testFrames(3)
	for i := range frames {
		pub.Send(&frames[i])
	}
	pub.End()
	for range view.Frames() {
		t.Fatal("unsigned frame leaked through signed broadcast")
	}
	if got := s.Stats().TamperedFrames; got != 3 {
		t.Fatalf("TamperedFrames = %d, want 3", got)
	}
}

func TestStatsCounters(t *testing.T) {
	s, addr := startServer(t, ServerConfig{})
	ctx := context.Background()
	pub, _ := Publish(ctx, addr, "b1", "tok", nil)
	v, _ := Subscribe(ctx, addr, "b1", "tok", ViewerOptions{})
	defer v.Close()
	frames := testFrames(4)
	for i := range frames {
		pub.Send(&frames[i])
	}
	pub.End()
	for range v.Frames() {
	}
	if got := s.Stats().FramesIn; got != 4 {
		t.Fatalf("FramesIn = %d", got)
	}
	if got := s.Stats().FramesOut; got != 4 {
		t.Fatalf("FramesOut = %d", got)
	}
	if s.Stats().BytesIn <= 0 || s.Stats().BytesOut <= 0 {
		t.Fatal("byte counters did not advance")
	}
}
