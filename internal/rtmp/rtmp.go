// Package rtmp implements the RTMP-like half of the delivery path (§4.1): a
// persistent-TCP protocol where the broadcaster publishes 40 ms frames and
// the server pushes each frame to every subscribed viewer the moment it
// arrives. This is the low-latency path Periscope gives the first ~100
// viewers; the per-frame push is also what makes it expensive to scale
// (Fig. 14).
//
// Faithful to §7, the transport is unencrypted and the broadcast token
// travels in plaintext. The optional signature defense (§7.2) verifies an
// Ed25519 signature on every frame when the control plane has registered a
// broadcaster public key.
package rtmp

import (
	"context"
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/metrics"
	"repro/internal/wire"
)

// Auth validates a handshake. Implementations come from the control plane.
type Auth interface {
	// Authorize reports whether token may open broadcastID in role.
	Authorize(broadcastID, token, role string) bool
	// PublicKey returns the broadcaster's registered Ed25519 key for
	// signed streams, or nil when the broadcast is unsigned.
	PublicKey(broadcastID string) ed25519.PublicKey
}

// AuthFunc adapts a function to Auth with no signing keys.
type AuthFunc func(broadcastID, token, role string) bool

// Authorize implements Auth.
func (f AuthFunc) Authorize(broadcastID, token, role string) bool {
	return f(broadcastID, token, role)
}

// PublicKey implements Auth; AuthFunc streams are unsigned.
func (AuthFunc) PublicKey(string) ed25519.PublicKey { return nil }

// AllowAll authorizes every handshake (used by tests and the attack demo).
var AllowAll = AuthFunc(func(string, string, string) bool { return true })

// FrameTap observes every frame accepted from a broadcaster, with the server
// arrival time (timestamps ② and ⑥ of Fig. 10). The CDN origin uses it to
// feed the HLS chunker.
type FrameTap func(broadcastID string, f media.Frame, arrivedAt time.Time)

// FrameUsage sinks delivered-frame counts for usage metering. The server
// resolves one per broadcast at session setup (cold path) and calls
// MeterFrames from the fan-out hot path — implementations must be
// allocation-free atomic accumulators (control.TenantMeter is the real one).
type FrameUsage interface {
	MeterFrames(frames, bytes int64)
}

// ServerConfig configures a Server.
type ServerConfig struct {
	// Auth validates handshakes; nil means AllowAll.
	Auth Auth
	// TenantOf maps a broadcast to its owning tenant ("" for untenanted);
	// resolved once per publisher session to label the per-tenant
	// instruments. Nil disables tenant attribution.
	TenantOf func(broadcastID string) string
	// TenantUsage resolves the usage accumulator for a broadcast's tenant
	// (nil for untenanted). Called once per publisher session.
	TenantUsage func(broadcastID string) FrameUsage
	// ViewerCap is the per-broadcast RTMP viewer limit; beyond it
	// handshakes are refused with StatusFull so clients fall back to HLS
	// (§4.1: ≈100). Zero means unlimited.
	ViewerCap int
	// Tap observes accepted frames; may be nil.
	Tap FrameTap
	// OnEnd is called when a broadcast finishes; may be nil.
	OnEnd func(broadcastID string)
	// ResumeSeq, when set, supplies the next frame sequence the server
	// expects from a broadcaster opening the given broadcast — a recovered
	// origin returns its journal replay floor here so a reconnecting
	// publisher resumes instead of restarting from zero. The value rides
	// the OK ack's trailing ResumeSeq field; zero means "from the top".
	ResumeSeq func(broadcastID string) uint64
	// Pending, when set, reports a broadcast this server expects back
	// shortly (recovered from the journal, publisher not yet returned).
	// Viewers dialing such a broadcast are refused with StatusUnavailable —
	// a retryable answer — instead of the terminal StatusNotFound.
	Pending func(broadcastID string) bool
	// ViewerQueue is the per-viewer outgoing frame queue length; a viewer
	// that falls this far behind is disconnected (it would re-join via
	// HLS in production). Zero means 256.
	ViewerQueue int
	// WriteTimeout bounds each push to a viewer connection; a viewer
	// whose socket stays unwritable this long is dropped (a dead or
	// wedged client must never pin a server goroutine). Zero means 30s.
	WriteTimeout time.Duration
	// DropSignedFrames controls the verification failure policy: when a
	// signature check fails the frame is always excluded from fan-out,
	// and the whole broadcast is additionally terminated when this is
	// true.
	DropSignedFrames bool
	// Logf sinks diagnostics; nil discards.
	Logf func(format string, args ...interface{})
	// Clock stamps frame arrivals (timestamp ① of the delay
	// decomposition); nil means the real clock. Socket deadlines always
	// use the OS wall clock regardless — the kernel knows nothing about
	// a virtual time base.
	Clock clock.Clock
	// Metrics is the registry the server's instruments register in; nil
	// means a private registry (standalone servers and tests still get
	// working counters).
	Metrics *metrics.Registry
	// MetricsLabels are attached to every instrument — the origin wires
	// its site here so a shared registry distinguishes per-site series.
	MetricsLabels []metrics.Label
}

// Stats is a point-in-time snapshot of the server's cumulative counters and
// live gauges, read atomically from the metrics registry.
type Stats struct {
	FramesIn         int64
	FramesOut        int64
	BytesIn          int64
	BytesOut         int64
	ViewersRejected  int64
	TamperedFrames   int64
	SlowEvictions    int64
	ActiveBroadcasts int64
	ActiveViewers    int64
}

// serverMetrics are the registered instruments backing Stats. Counters and
// gauges are allocation-free on the per-frame path (DESIGN.md §5a budget).
type serverMetrics struct {
	framesIn         *metrics.Counter
	framesOut        *metrics.Counter
	bytesIn          *metrics.Counter
	bytesOut         *metrics.Counter
	viewersRejected  *metrics.Counter
	tamperedFrames   *metrics.Counter
	slowEvictions    *metrics.Counter
	activeBroadcasts *metrics.Gauge
	activeViewers    *metrics.Gauge
	pushLatency      *metrics.Histogram
}

// pushLatencyBuckets resolve the per-frame fan-out cost, which sits far
// below the delay-component scale: microseconds when viewer queues have
// room, creeping toward milliseconds under eviction pressure.
var pushLatencyBuckets = []time.Duration{
	10 * time.Microsecond,
	50 * time.Microsecond,
	100 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	25 * time.Millisecond,
	100 * time.Millisecond,
	500 * time.Millisecond,
}

func newServerMetrics(reg *metrics.Registry, labels []metrics.Label) *serverMetrics {
	return &serverMetrics{
		framesIn:         reg.Counter("rtmp_frames_in_total", labels...),
		framesOut:        reg.Counter("rtmp_frames_out_total", labels...),
		bytesIn:          reg.Counter("rtmp_bytes_in_total", labels...),
		bytesOut:         reg.Counter("rtmp_bytes_out_total", labels...),
		viewersRejected:  reg.Counter("rtmp_viewers_rejected_total", labels...),
		tamperedFrames:   reg.Counter("rtmp_tampered_frames_total", labels...),
		slowEvictions:    reg.Counter("rtmp_slow_evictions_total", labels...),
		activeBroadcasts: reg.Gauge("rtmp_active_broadcasts", labels...),
		activeViewers:    reg.Gauge("rtmp_active_viewers", labels...),
		pushLatency:      reg.Histogram("rtmp_push_latency_seconds", pushLatencyBuckets, labels...),
	}
}

// Server is the Wowza-analog RTMP endpoint.
type Server struct {
	cfg ServerConfig
	m   *serverMetrics

	mu         sync.Mutex
	broadcasts map[string]*broadcast
	lns        []net.Listener
	conns      map[net.Conn]struct{}
	closed     bool
	aborted    bool
	wg         sync.WaitGroup
}

type broadcast struct {
	id     string
	pubKey ed25519.PublicKey

	// Per-tenant attribution, resolved once at publisher handshake (cold
	// path) so the fan-out hot path is nil-checks and atomic adds — zero
	// allocations per frame (DESIGN.md §5a budget, benchguard-enforced).
	// All nil for untenanted broadcasts.
	tFramesOut *metrics.Counter
	tBytesOut  *metrics.Counter
	tDelay     *metrics.Histogram
	usage      FrameUsage

	// mu serializes membership changes — join, leave, eviction, end. The
	// fan-out path never takes it: it reads the copy-on-write snapshot
	// below, so a frame push to N viewers runs entirely lock-free and a
	// stalled viewer join cannot block frame delivery (or vice versa).
	mu      sync.Mutex
	viewers atomic.Pointer[[]*viewerConn]
	ended   bool
}

// snapshot returns the current viewer set. The slice is immutable: writers
// replace it wholesale under b.mu.
func (b *broadcast) snapshot() []*viewerConn {
	if p := b.viewers.Load(); p != nil {
		return *p
	}
	return nil
}

// remove takes the given viewers out of the snapshot and closes their done
// channels. Idempotent and safe against concurrent fan-out: readers keep
// iterating the old snapshot, whose channels stay valid.
func (b *broadcast) remove(vs ...*viewerConn) {
	b.mu.Lock()
	cur := b.snapshot()
	next := make([]*viewerConn, 0, len(cur))
	for _, w := range cur {
		keep := true
		for _, v := range vs {
			if w == v {
				keep = false
				break
			}
		}
		if keep {
			next = append(next, w)
		}
	}
	if len(next) != len(cur) {
		b.viewers.Store(&next)
	}
	b.mu.Unlock()
	for _, v := range vs {
		v.close()
	}
}

type viewerConn struct {
	out  chan wire.Encoded
	done chan struct{}
	// gone flips exactly once — on eviction, leave, or broadcast end; the
	// winner of the flip closes done.
	gone atomic.Bool
}

// close closes done exactly once, reporting whether this call won the flip.
func (v *viewerConn) close() bool {
	if v.gone.CompareAndSwap(false, true) {
		close(v.done)
		return true
	}
	return false
}

// encodedEnd is the shared pre-framed MsgEnd every teardown path writes.
var encodedEnd = func() wire.Encoded {
	e, err := wire.EncodeMessage(wire.Message{Type: wire.MsgEnd})
	if err != nil {
		panic(err)
	}
	return e
}()

// NewServer builds a Server from cfg.
func NewServer(cfg ServerConfig) *Server {
	if cfg.Auth == nil {
		cfg.Auth = AllowAll
	}
	if cfg.ViewerQueue == 0 {
		cfg.ViewerQueue = 256
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = 30 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...interface{}) {}
	}
	if cfg.Clock == nil {
		cfg.Clock = clock.NewReal()
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return &Server{
		cfg:        cfg,
		m:          newServerMetrics(cfg.Metrics, cfg.MetricsLabels),
		broadcasts: make(map[string]*broadcast),
		conns:      make(map[net.Conn]struct{}),
	}
}

// Stats snapshots the server's instruments. Callers needing live series
// (rates, histograms) should read the metrics registry instead.
func (s *Server) Stats() Stats {
	return Stats{
		FramesIn:         s.m.framesIn.Value(),
		FramesOut:        s.m.framesOut.Value(),
		BytesIn:          s.m.bytesIn.Value(),
		BytesOut:         s.m.bytesOut.Value(),
		ViewersRejected:  s.m.viewersRejected.Value(),
		TamperedFrames:   s.m.tamperedFrames.Value(),
		SlowEvictions:    s.m.slowEvictions.Value(),
		ActiveBroadcasts: s.m.activeBroadcasts.Value(),
		ActiveViewers:    s.m.activeViewers.Value(),
	}
}

// Serve accepts connections on ln until ln is closed or ctx is done.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	s.mu.Lock()
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	go func() {
		<-ctx.Done()
		ln.Close()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || ctx.Err() != nil || errors.Is(err, net.ErrClosed) {
				// Close (not Serve) waits for handler goroutines:
				// several accept loops share the WaitGroup, and a
				// per-loop Wait would race the others' Adds.
				return nil
			}
			return fmt.Errorf("rtmp: accept: %w", err)
		}
		if !s.track(conn) {
			conn.Close()
			continue
		}
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			s.handle(conn)
		}()
	}
}

// track registers one handler goroutine (and its connection) with the
// server. The mutex + closed check keep Add from racing Close's Wait: once
// Close has set closed under the lock, no new handler can be added, so Wait
// only observes a monotonically draining counter. Tracking the connection
// itself lets Abort sever every live session the way a process crash would.
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.wg.Add(1)
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

func (s *Server) isAborted() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.aborted
}

// Listen starts serving on addr in a background goroutine and returns the
// bound listener.
func (s *Server) Listen(ctx context.Context, addr string) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rtmp: listen: %w", err)
	}
	go func() {
		if err := s.Serve(ctx, ln); err != nil {
			s.cfg.Logf("rtmp server: %v", err)
		}
	}()
	return ln, nil
}

// ListenTLS starts an RTMPS listener: the same protocol under TLS, which is
// how Periscope serves private broadcasts and Facebook Live serves
// everything (§7.2). The transport encryption defeats the §7 on-path
// tampering attack at the cost of per-byte crypto.
func (s *Server) ListenTLS(ctx context.Context, addr string, tlsCfg *tls.Config) (net.Listener, error) {
	ln, err := tls.Listen("tcp", addr, tlsCfg)
	if err != nil {
		return nil, fmt.Errorf("rtmp: listen tls: %w", err)
	}
	go func() {
		if err := s.Serve(ctx, ln); err != nil {
			s.cfg.Logf("rtmps server: %v", err)
		}
	}()
	return ln, nil
}

// Close stops accepting and disconnects every session.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	lns := append([]net.Listener(nil), s.lns...)
	bs := make([]*broadcast, 0, len(s.broadcasts))
	for _, b := range s.broadcasts {
		bs = append(bs, b)
	}
	s.mu.Unlock()
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	for _, b := range bs {
		s.endBroadcast(b)
	}
	s.wg.Wait()
	return err
}

// Abort simulates a process crash: listeners and every live connection are
// torn down immediately, and no MsgEnd is sent to anyone — peers observe a
// dead transport, exactly what killing the origin process would produce.
// Close is the graceful sibling; Abort exists so fault injection can crash
// an origin without leaking a clean end-of-broadcast to its viewers.
func (s *Server) Abort() error {
	s.mu.Lock()
	s.closed = true
	s.aborted = true
	lns := append([]net.Listener(nil), s.lns...)
	bs := make([]*broadcast, 0, len(s.broadcasts))
	for _, b := range s.broadcasts {
		bs = append(bs, b)
	}
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	var err error
	for _, ln := range lns {
		if cerr := ln.Close(); err == nil {
			err = cerr
		}
	}
	for _, b := range bs {
		s.abortBroadcast(b)
	}
	for _, c := range conns {
		c.Close()
	}
	s.wg.Wait()
	return err
}

// abortBroadcast is endBroadcast without the clean MsgEnd: viewer done
// channels close so handler loops unwind, but nothing is queued — the
// viewers' sockets are being severed, and a crash must not look like an end.
func (s *Server) abortBroadcast(b *broadcast) {
	b.mu.Lock()
	if b.ended {
		b.mu.Unlock()
		return
	}
	b.ended = true
	viewers := b.snapshot()
	empty := make([]*viewerConn, 0)
	b.viewers.Store(&empty)
	b.mu.Unlock()
	for _, v := range viewers {
		v.close()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	msg, err := wire.ReadMessage(conn)
	if err != nil {
		return
	}
	if msg.Type != wire.MsgHandshake {
		return
	}
	hs, err := wire.UnmarshalHandshake(msg.Body)
	if err != nil {
		return
	}
	if !s.cfg.Auth.Authorize(hs.BroadcastID, hs.Token, hs.Role) {
		// An auth backed by the control plane rejects everything about an
		// ended broadcast. A viewer rejoining after the end must hear
		// "not found" (a normal end of stream), not "bad token" — the
		// distinction keeps auto-reconnect loops from redialing forever.
		if s.broadcastGone(hs.BroadcastID) {
			s.ack(conn, wire.StatusNotFound, "no such broadcast")
			return
		}
		s.ack(conn, wire.StatusBadToken, "token rejected")
		return
	}
	switch hs.Role {
	case wire.RoleBroadcaster:
		s.handleBroadcaster(conn, hs)
	case wire.RoleViewer:
		s.handleViewer(conn, hs)
	default:
		s.ack(conn, wire.StatusBadToken, "unknown role "+hs.Role)
	}
}

// broadcastGone reports whether a broadcast is unknown to this server or
// already ended.
func (s *Server) broadcastGone(broadcastID string) bool {
	s.mu.Lock()
	b := s.broadcasts[broadcastID]
	s.mu.Unlock()
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ended
}

func (s *Server) ack(conn net.Conn, status, message string) {
	s.ackResume(conn, status, message, 0)
}

func (s *Server) ackResume(conn net.Conn, status, message string, resumeSeq uint64) {
	m := wire.Message{Type: wire.MsgHandshakeAck, Body: wire.MarshalAck(wire.Ack{Status: status, Message: message, ResumeSeq: resumeSeq})}
	if err := wire.WriteMessage(conn, m); err != nil {
		s.cfg.Logf("rtmp ack: %v", err)
	}
}

func (s *Server) handleBroadcaster(conn net.Conn, hs wire.Handshake) {
	b := &broadcast{
		id:     hs.BroadcastID,
		pubKey: s.cfg.Auth.PublicKey(hs.BroadcastID),
	}
	if s.cfg.TenantOf != nil {
		if tenant := s.cfg.TenantOf(hs.BroadcastID); tenant != "" {
			labels := make([]metrics.Label, 0, len(s.cfg.MetricsLabels)+1)
			labels = append(labels, s.cfg.MetricsLabels...)
			labels = append(labels, metrics.L("tenant", tenant))
			b.tFramesOut = s.cfg.Metrics.Counter("rtmp_tenant_frames_out_total", labels...)
			b.tBytesOut = s.cfg.Metrics.Counter("rtmp_tenant_bytes_out_total", labels...)
			b.tDelay = s.cfg.Metrics.Histogram("rtmp_tenant_push_latency_seconds", pushLatencyBuckets, labels...)
			if s.cfg.TenantUsage != nil {
				b.usage = s.cfg.TenantUsage(hs.BroadcastID)
			}
		}
	}
	s.mu.Lock()
	if _, dup := s.broadcasts[hs.BroadcastID]; dup {
		s.mu.Unlock()
		s.ack(conn, wire.StatusDuplicate, "broadcast already live")
		return
	}
	s.broadcasts[hs.BroadcastID] = b
	s.mu.Unlock()
	s.m.activeBroadcasts.Add(1)
	defer func() {
		s.mu.Lock()
		delete(s.broadcasts, hs.BroadcastID)
		s.mu.Unlock()
		s.m.activeBroadcasts.Add(-1)
		s.endBroadcast(b)
		if s.cfg.OnEnd != nil {
			s.cfg.OnEnd(hs.BroadcastID)
		}
	}()
	var resume uint64
	if s.cfg.ResumeSeq != nil {
		resume = s.cfg.ResumeSeq(hs.BroadcastID)
	}
	s.ackResume(conn, wire.StatusOK, "publishing", resume)

	for {
		enc, err := wire.ReadEncoded(conn)
		if err != nil {
			if err != io.EOF && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("rtmp publish %s: %v", hs.BroadcastID, err)
			}
			return
		}
		switch enc.Type() {
		case wire.MsgEnd:
			return
		case wire.MsgFrame, wire.MsgSignedFrame:
			if !s.acceptFrame(b, enc) {
				if s.cfg.DropSignedFrames {
					return
				}
			}
		default:
			s.cfg.Logf("rtmp publish %s: unexpected message type %d", hs.BroadcastID, enc.Type())
		}
	}
}

// acceptFrame validates, records, taps, and fans out one frame message. The
// message arrives pre-framed and is relayed to every viewer as-is: one
// allocation per arrival (the read buffer), zero per viewer. It reports
// false when the frame failed signature verification.
//
//livesim:hotpath
func (s *Server) acceptFrame(b *broadcast, enc wire.Encoded) bool {
	body := enc.Body()
	frameBytes := body
	var sig []byte
	if enc.Type() == wire.MsgSignedFrame {
		fb, sg, err := wire.UnmarshalSignedFrame(body)
		if err != nil {
			s.m.tamperedFrames.Add(1)
			return false
		}
		if b.pubKey != nil && !ed25519.Verify(b.pubKey, fb, sg) {
			s.m.tamperedFrames.Add(1)
			return false
		}
		frameBytes, sig = fb, sg
	} else if b.pubKey != nil {
		// A signed broadcast must not accept unsigned frames: that is
		// exactly the downgrade a §7 attacker would try.
		s.m.tamperedFrames.Add(1)
		return false
	}
	if s.cfg.Tap == nil {
		// No tap: nothing retains the decoded frame, so validate the bytes
		// in place and skip the payload-copying decode entirely.
		if _, err := media.SniffFrame(frameBytes); err != nil {
			return false
		}
		s.m.framesIn.Inc()
		s.m.bytesIn.Add(int64(len(body)))
	} else {
		f, _, err := media.UnmarshalFrame(frameBytes)
		if err != nil {
			return false
		}
		// Carry the signature into the HLS path: chunks assembled from
		// the tap retain per-frame signatures so HLS viewers can verify
		// too (§7.2's viewer-side defense). The tap keeps the frame past
		// this call, so it needs its own copy of the signature.
		if sig != nil {
			f.Sig = append([]byte(nil), sig...)
		}
		arrived := s.cfg.Clock.Now()
		s.m.framesIn.Inc()
		s.m.bytesIn.Add(int64(len(body)))
		s.cfg.Tap(b.id, f, arrived)
	}
	// Fan out over the copy-on-write snapshot: no lock held while pushing,
	// so N channel sends never serialize against joins/leaves (or each
	// other on sibling broadcasts).
	pushStart := s.cfg.Clock.Now()
	var evicted []*viewerConn
	vs := b.snapshot()
	for _, v := range vs {
		select {
		case v.out <- enc:
		default:
			// Viewer too slow: disconnect it (production clients
			// would rejoin via HLS).
			evicted = append(evicted, v)
		}
	}
	pushDur := s.cfg.Clock.Now().Sub(pushStart)
	s.m.pushLatency.Observe(pushDur)
	// Tenant attribution: cached handles resolved at handshake, so this is
	// nil-checks and atomic adds — no per-frame allocations.
	if b.tFramesOut != nil {
		if delivered := int64(len(vs) - len(evicted)); delivered > 0 {
			b.tFramesOut.Add(delivered)
			b.tBytesOut.Add(delivered * int64(len(body)))
			if b.usage != nil {
				b.usage.MeterFrames(delivered, delivered*int64(len(body)))
			}
		}
		b.tDelay.Observe(pushDur)
	}
	if evicted != nil {
		s.m.slowEvictions.Add(int64(len(evicted)))
		b.remove(evicted...)
	}
	return true
}

func (s *Server) endBroadcast(b *broadcast) {
	b.mu.Lock()
	if b.ended {
		b.mu.Unlock()
		return
	}
	b.ended = true
	viewers := b.snapshot()
	empty := make([]*viewerConn, 0)
	b.viewers.Store(&empty)
	b.mu.Unlock()
	for _, v := range viewers {
		select {
		case v.out <- encodedEnd:
		default:
		}
		v.close()
	}
}

func (s *Server) handleViewer(conn net.Conn, hs wire.Handshake) {
	s.mu.Lock()
	b := s.broadcasts[hs.BroadcastID]
	s.mu.Unlock()
	if b == nil {
		if s.cfg.Pending != nil && s.cfg.Pending(hs.BroadcastID) {
			// The origin recovered this broadcast from its journal and is
			// waiting for the publisher to return: a retryable refusal, not
			// a terminal "gone".
			s.ack(conn, wire.StatusUnavailable, "broadcast recovering; retry")
			return
		}
		s.ack(conn, wire.StatusNotFound, "no such broadcast")
		return
	}
	v := &viewerConn{
		out:  make(chan wire.Encoded, s.cfg.ViewerQueue),
		done: make(chan struct{}),
	}
	b.mu.Lock()
	if b.ended {
		b.mu.Unlock()
		s.ack(conn, wire.StatusNotFound, "broadcast ended")
		return
	}
	cur := b.snapshot()
	if s.cfg.ViewerCap > 0 && len(cur) >= s.cfg.ViewerCap {
		b.mu.Unlock()
		s.m.viewersRejected.Inc()
		s.ack(conn, wire.StatusFull, "RTMP viewer cap reached; use HLS")
		return
	}
	next := make([]*viewerConn, len(cur)+1)
	copy(next, cur)
	next[len(cur)] = v
	b.viewers.Store(&next)
	b.mu.Unlock()
	s.m.activeViewers.Add(1)
	defer func() {
		b.remove(v)
		s.m.activeViewers.Add(-1)
	}()
	s.ack(conn, wire.StatusOK, "subscribed")

	// Reader goroutine: detect client hangup. The buffer is reused across
	// reads — viewers are not expected to send anything meaningful.
	hangup := make(chan struct{})
	go func() {
		defer close(hangup)
		var buf []byte
		for {
			var err error
			if _, buf, err = wire.ReadMessageInto(conn, buf); err != nil {
				return
			}
		}
	}()
	for {
		select {
		case <-hangup:
			return
		case <-v.done:
			if s.isAborted() {
				// Crashing: the socket is being severed; no flush, and
				// critically no clean MsgEnd.
				return
			}
			// Flush anything already queued, then end.
			for {
				select {
				case m := <-v.out:
					if err := s.pushToViewer(conn, m); err != nil {
						return
					}
				default:
					_ = wire.WriteEncoded(conn, encodedEnd)
					return
				}
			}
		case m := <-v.out:
			if err := s.pushToViewer(conn, m); err != nil {
				return
			}
		}
	}
}

//livesim:hotpath
func (s *Server) pushToViewer(conn net.Conn, e wire.Encoded) error {
	if s.cfg.WriteTimeout > 0 {
		//lint:allow walltime socket deadlines are interpreted by the kernel, which only speaks wall time
		conn.SetWriteDeadline(time.Now().Add(s.cfg.WriteTimeout))
	}
	if err := wire.WriteEncoded(conn, e); err != nil {
		return err
	}
	if t := e.Type(); t == wire.MsgFrame || t == wire.MsgSignedFrame {
		s.m.framesOut.Inc()
		s.m.bytesOut.Add(int64(len(e.Body())))
	}
	return nil
}
