package rtmp

import (
	"context"
	"crypto/ed25519"
	"crypto/tls"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/clock"
	"repro/internal/media"
	"repro/internal/wire"
)

// ErrFull is returned when the server refuses a viewer because the RTMP cap
// is reached — the signal that sends later arrivals to HLS (§4.1).
var ErrFull = errors.New("rtmp: broadcast full, use HLS")

// ErrRejected is returned for any other refused handshake.
type ErrRejected struct{ Status, Message string }

// Error implements error.
func (e *ErrRejected) Error() string {
	return fmt.Sprintf("rtmp: handshake rejected: %s (%s)", e.Status, e.Message)
}

// dialAndHandshakeTLS opens the session over TLS when tlsCfg is non-nil —
// the RTMPS variant Periscope reserves for private broadcasts (§7.2). A
// non-nil wrap intercepts the raw connection (fault injection harnesses).
// A positive timeout bounds the dial plus the handshake round-trip: without
// it a lost SYN or a stalled peer blocks the caller on kernel retransmit
// backoff, which is fatal inside an auto-reconnect loop.
func dialAndHandshakeTLS(ctx context.Context, addr string, hs wire.Handshake, tlsCfg *tls.Config, wrap func(net.Conn) net.Conn, timeout time.Duration) (net.Conn, wire.Ack, error) {
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	var conn net.Conn
	var err error
	if tlsCfg != nil {
		td := &tls.Dialer{Config: tlsCfg}
		conn, err = td.DialContext(ctx, "tcp", addr)
	} else {
		var d net.Dialer
		conn, err = d.DialContext(ctx, "tcp", addr)
	}
	if err != nil {
		return nil, wire.Ack{}, fmt.Errorf("rtmp: dial %s: %w", addr, err)
	}
	if wrap != nil {
		conn = wrap(conn)
	}
	if dl, ok := ctx.Deadline(); ok {
		conn.SetDeadline(dl)
	}
	m := wire.Message{Type: wire.MsgHandshake, Body: wire.MarshalHandshake(hs)}
	if err := wire.WriteMessage(conn, m); err != nil {
		conn.Close()
		return nil, wire.Ack{}, err
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		conn.Close()
		return nil, wire.Ack{}, fmt.Errorf("rtmp: reading handshake ack: %w", err)
	}
	conn.SetDeadline(time.Time{})
	if reply.Type != wire.MsgHandshakeAck {
		conn.Close()
		return nil, wire.Ack{}, fmt.Errorf("rtmp: unexpected reply type %d", reply.Type)
	}
	ack, err := wire.UnmarshalAck(reply.Body)
	if err != nil {
		conn.Close()
		return nil, wire.Ack{}, err
	}
	switch ack.Status {
	case wire.StatusOK:
		return conn, ack, nil
	case wire.StatusFull:
		conn.Close()
		return nil, ack, ErrFull
	default:
		conn.Close()
		return nil, ack, &ErrRejected{Status: ack.Status, Message: ack.Message}
	}
}

// Publisher is a broadcaster-side RTMP session. Its methods are not safe for
// concurrent use: frames must be uploaded from one goroutine, as interleaved
// writes would corrupt the message stream anyway.
type Publisher struct {
	conn   net.Conn
	signer ed25519.PrivateKey
	// resumeSeq is the server's replay floor from the handshake ack: the
	// next frame sequence it expects. Nonzero only when reconnecting to a
	// recovered origin.
	resumeSeq uint64
	// scratch is the reused frame-marshal buffer; Send frames into it so a
	// steady 25 fps upload allocates nothing per frame on the unsigned path.
	scratch []byte
}

// Publish opens a broadcaster session. A non-nil signer enables the §7.2
// defense: every frame is signed before upload.
func Publish(ctx context.Context, addr, broadcastID, token string, signer ed25519.PrivateKey) (*Publisher, error) {
	return PublishTLS(ctx, addr, broadcastID, token, signer, nil)
}

// PublishTLS opens a broadcaster session over RTMPS (TLS) when tlsCfg is
// non-nil — Periscope's private-broadcast transport and Facebook Live's
// default (§7.2).
func PublishTLS(ctx context.Context, addr, broadcastID, token string, signer ed25519.PrivateKey, tlsCfg *tls.Config) (*Publisher, error) {
	conn, ack, err := dialAndHandshakeTLS(ctx, addr, wire.Handshake{
		Role: wire.RoleBroadcaster, BroadcastID: broadcastID, Token: token,
	}, tlsCfg, nil, 0)
	if err != nil {
		return nil, err
	}
	return &Publisher{conn: conn, signer: signer, resumeSeq: ack.ResumeSeq}, nil
}

// ResumeSeq returns the next frame sequence the server asked for at
// handshake time — zero for a fresh broadcast, the journal replay floor when
// the server recovered this broadcast from a crash.
func (p *Publisher) ResumeSeq() uint64 { return p.resumeSeq }

// Send uploads one frame, signed when the publisher has a signing key.
func (p *Publisher) Send(f *media.Frame) error {
	p.scratch = media.MarshalFrame(p.scratch[:0], f)
	frameBytes := p.scratch
	if p.signer == nil {
		return wire.WriteMessage(p.conn, wire.Message{Type: wire.MsgFrame, Body: frameBytes})
	}
	sig := ed25519.Sign(p.signer, frameBytes)
	body, err := wire.MarshalSignedFrame(frameBytes, sig)
	if err != nil {
		return err
	}
	return wire.WriteMessage(p.conn, wire.Message{Type: wire.MsgSignedFrame, Body: body})
}

// End announces a clean end of broadcast and closes the connection.
func (p *Publisher) End() error {
	err := wire.WriteMessage(p.conn, wire.Message{Type: wire.MsgEnd})
	if cerr := p.conn.Close(); err == nil {
		err = cerr
	}
	return err
}

// Close aborts the session without an end marker.
func (p *Publisher) Close() error { return p.conn.Close() }

// ReceivedFrame is one frame as seen by a viewer, with its local arrival
// time (timestamp ③ of Fig. 10) and signature status.
type ReceivedFrame struct {
	Frame      media.Frame
	ReceivedAt time.Time
	// Signed reports whether the frame arrived with a signature.
	Signed bool
	// Verified reports whether the signature checked out against the
	// viewer's copy of the broadcaster key; always false for unsigned
	// frames or when the viewer has no key.
	Verified bool
}

// Viewer is a viewer-side RTMP session receiving pushed frames.
type Viewer struct {
	conn      net.Conn
	frames    chan ReceivedFrame
	errc      chan error
	done      chan struct{}
	closeOnce sync.Once
	pubKey    ed25519.PublicKey
	clk       clock.Clock
}

// ViewerOptions tune a Subscribe call.
type ViewerOptions struct {
	// BufferMs is the requested stream buffer; the paper's crawler uses 0
	// so every frame arrives as soon as available (§4.3).
	BufferMs uint32
	// PubKey, when set, verifies the §7.2 signature on each frame.
	PubKey ed25519.PublicKey
	// Queue is the local frame queue size (default 1024).
	Queue int
	// WrapConn, when set, intercepts the raw connection right after dial
	// (before the handshake) — the seam fault-injection harnesses use to
	// model resets and loss on the viewer's last-mile link (§5.2).
	WrapConn func(net.Conn) net.Conn
	// DialTimeout bounds the dial plus handshake round-trip; zero means
	// no bound beyond ctx (SubscribeResilient applies its own default).
	DialTimeout time.Duration
	// Clock stamps frame receipt (timestamp ② of the delay
	// decomposition); nil means the real clock.
	Clock clock.Clock
}

// Subscribe opens a viewer session. The returned Viewer's Frames channel is
// closed when the broadcast ends or the connection drops; Err reports the
// terminal error, if any.
func Subscribe(ctx context.Context, addr, broadcastID, token string, opts ViewerOptions) (*Viewer, error) {
	return SubscribeTLS(ctx, addr, broadcastID, token, opts, nil)
}

// SubscribeTLS opens a viewer session over RTMPS when tlsCfg is non-nil.
func SubscribeTLS(ctx context.Context, addr, broadcastID, token string, opts ViewerOptions, tlsCfg *tls.Config) (*Viewer, error) {
	conn, _, err := dialAndHandshakeTLS(ctx, addr, wire.Handshake{
		Role: wire.RoleViewer, BroadcastID: broadcastID, Token: token, BufferMs: opts.BufferMs,
	}, tlsCfg, opts.WrapConn, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	if opts.Queue == 0 {
		opts.Queue = 1024
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.NewReal()
	}
	v := &Viewer{
		conn:   conn,
		frames: make(chan ReceivedFrame, opts.Queue),
		errc:   make(chan error, 1),
		done:   make(chan struct{}),
		pubKey: opts.PubKey,
		clk:    clk,
	}
	go v.receiveLoop()
	return v, nil
}

func (v *Viewer) receiveLoop() {
	defer close(v.frames)
	// The read buffer is reused across frames: UnmarshalFrame copies the
	// payload out, so nothing retains msg.Body past the iteration.
	var buf []byte
	for {
		var msg wire.Message
		var err error
		msg, buf, err = wire.ReadMessageInto(v.conn, buf)
		if err != nil {
			v.errc <- err
			return
		}
		switch msg.Type {
		case wire.MsgEnd:
			return
		case wire.MsgFrame, wire.MsgSignedFrame:
			rf := ReceivedFrame{ReceivedAt: v.clk.Now()}
			frameBytes := msg.Body
			if msg.Type == wire.MsgSignedFrame {
				fb, sig, err := wire.UnmarshalSignedFrame(msg.Body)
				if err != nil {
					continue
				}
				rf.Signed = true
				if v.pubKey != nil {
					rf.Verified = ed25519.Verify(v.pubKey, fb, sig)
				}
				frameBytes = fb
			}
			f, _, err := media.UnmarshalFrame(frameBytes)
			if err != nil {
				continue
			}
			rf.Frame = f
			// Close must be able to unblock a receive loop stalled on a
			// full frames queue — the conn close alone only interrupts the
			// read, not this send.
			select {
			case v.frames <- rf:
			case <-v.done:
				return
			}
		}
	}
}

// Frames returns the pushed-frame channel.
func (v *Viewer) Frames() <-chan ReceivedFrame { return v.frames }

// Err returns the terminal receive error, or nil after a clean MsgEnd.
func (v *Viewer) Err() error {
	select {
	case err := <-v.errc:
		return err
	default:
		return nil
	}
}

// Close tears down the session: it interrupts the blocking read and releases
// a receive loop blocked on an undrained Frames channel.
func (v *Viewer) Close() error {
	v.closeOnce.Do(func() { close(v.done) })
	return v.conn.Close()
}
