package rtmp

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/wire"
)

// encodeFrameMsg builds the pre-framed wire message a broadcaster read loop
// would hand to acceptFrame.
func encodeFrameMsg(t testing.TB, seq uint64, payload int) wire.Encoded {
	t.Helper()
	f := &media.Frame{Seq: seq, CapturedAt: time.Unix(1, 2), Payload: make([]byte, payload)}
	enc, err := wire.EncodeMessage(wire.Message{Type: wire.MsgFrame, Body: media.MarshalFrame(nil, f)})
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

// TestConcurrentJoinLeaveFanout churns viewers on and off a live broadcast
// while the publisher keeps pumping frames — the copy-on-write registry must
// keep joins, leaves, and fan-out consistent under the race detector.
func TestConcurrentJoinLeaveFanout(t *testing.T) {
	s, addr := startServer(t, ServerConfig{ViewerQueue: 4096})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	pub, err := Publish(ctx, addr, "churn", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.Close()

	stop := make(chan struct{})
	pubDone := make(chan struct{})
	go func() {
		defer close(pubDone)
		payload := make([]byte, 512)
		for seq := uint64(1); ; seq++ {
			select {
			case <-stop:
				return
			default:
			}
			f := &media.Frame{Seq: seq, CapturedAt: time.Now(), Payload: payload}
			if err := pub.Send(f); err != nil {
				return
			}
		}
	}()

	const churners = 8
	const rounds = 5
	var wg sync.WaitGroup
	for i := 0; i < churners; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				v, err := Subscribe(ctx, addr, "churn", "tok", ViewerOptions{Queue: 256})
				if err != nil {
					t.Errorf("subscribe: %v", err)
					return
				}
				// Consume a few frames to prove fan-out reaches a viewer
				// that joined mid-broadcast, then leave.
				for got := 0; got < 3; got++ {
					select {
					case _, ok := <-v.Frames():
						if !ok {
							t.Error("frames channel closed mid-broadcast")
							v.Close()
							return
						}
					case <-ctx.Done():
						t.Error("timed out waiting for frames")
						v.Close()
						return
					}
				}
				v.Close()
			}
		}()
	}
	wg.Wait()
	close(stop)
	<-pubDone

	// Every viewer left; the server-side registry must drain to zero.
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().ActiveViewers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveViewers = %d after all viewers left", s.Stats().ActiveViewers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := pub.End(); err != nil {
		t.Fatal(err)
	}
}

// TestAcceptFrameEvictsSlowViewer drives the copy-on-write eviction path
// directly: a viewer whose queue is full is removed from the snapshot and its
// done channel closed, while the healthy viewer keeps receiving.
func TestAcceptFrameEvictsSlowViewer(t *testing.T) {
	s := NewServer(ServerConfig{})
	b := &broadcast{id: "evict"}
	slow := &viewerConn{out: make(chan wire.Encoded, 1), done: make(chan struct{})}
	fast := &viewerConn{out: make(chan wire.Encoded, 16), done: make(chan struct{})}
	vs := []*viewerConn{slow, fast}
	b.viewers.Store(&vs)

	enc := encodeFrameMsg(t, 1, 64)
	// Frame 1 fills slow's queue; frame 2 overflows it and must evict.
	for i := 0; i < 2; i++ {
		if !s.acceptFrame(b, enc) {
			t.Fatalf("frame %d rejected", i+1)
		}
	}
	select {
	case <-slow.done:
	default:
		t.Fatal("slow viewer's done channel not closed after eviction")
	}
	if cur := b.snapshot(); len(cur) != 1 || cur[0] != fast {
		t.Fatalf("snapshot after eviction = %d viewers, want just the fast one", len(cur))
	}
	if len(fast.out) != 2 {
		t.Fatalf("fast viewer queued %d frames, want 2", len(fast.out))
	}
	// Eviction is idempotent: a second remove must not re-close done.
	b.remove(slow)
}

// TestAcceptFrameAllocBudget pins the per-frame fan-out allocation budget.
// The message arrives pre-framed, so relaying it to N viewers must not
// allocate at all without a tap, and only the decode's payload copy with one.
func TestAcceptFrameAllocBudget(t *testing.T) {
	const viewers = 10
	enc := encodeFrameMsg(t, 1, 1024)

	setup := func(tap FrameTap) (*Server, *broadcast) {
		s := NewServer(ServerConfig{Tap: tap})
		b := &broadcast{id: "alloc"}
		vs := make([]*viewerConn, viewers)
		for i := range vs {
			vs[i] = &viewerConn{out: make(chan wire.Encoded, 4), done: make(chan struct{})}
		}
		b.viewers.Store(&vs)
		return s, b
	}

	t.Run("no_tap", func(t *testing.T) {
		s, b := setup(nil)
		allocs := testing.AllocsPerRun(100, func() {
			if !s.acceptFrame(b, enc) {
				t.Fatal("frame rejected")
			}
			for _, v := range b.snapshot() {
				<-v.out
			}
		})
		if allocs > 0 {
			t.Fatalf("fan-out allocs/frame = %.1f, want 0", allocs)
		}
	})

	t.Run("tap", func(t *testing.T) {
		var tapped int
		s, b := setup(func(string, media.Frame, time.Time) { tapped++ })
		allocs := testing.AllocsPerRun(100, func() {
			if !s.acceptFrame(b, enc) {
				t.Fatal("frame rejected")
			}
			for _, v := range b.snapshot() {
				<-v.out
			}
		})
		if tapped == 0 {
			t.Fatal("tap never fired")
		}
		// Budget: the tap retains the decoded frame, so the payload copy in
		// UnmarshalFrame is the one allowed allocation (plus slack for the
		// runtime's occasional map/chan internals).
		if allocs > 2 {
			t.Fatalf("tap-path allocs/frame = %.1f, want <= 2", allocs)
		}
	})
}
