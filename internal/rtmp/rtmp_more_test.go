package rtmp

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/wire"
)

// TestSlowViewerDoesNotBlockBroadcast verifies the backpressure policy: a
// viewer that stops draining its connection never stalls the broadcast —
// frames keep flowing to healthy viewers and, once its queue overflows, the
// stalled session is dropped (production clients would rejoin via HLS).
func TestSlowViewerDoesNotBlockBroadcast(t *testing.T) {
	s, addr := startServer(t, ServerConfig{ViewerQueue: 8192})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pub.End()

	// A raw conn that handshakes as viewer and then never reads.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	hs := wire.Handshake{Role: wire.RoleViewer, BroadcastID: "b1"}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgHandshake, Body: wire.MarshalHandshake(hs)}); err != nil {
		t.Fatal(err)
	}
	if _, err := wire.ReadMessage(conn); err != nil { // ack
		t.Fatal(err)
	}

	// Fast, healthy viewer for comparison.
	healthy, err := Subscribe(ctx, addr, "b1", "", ViewerOptions{Queue: 8192})
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	received := 0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range healthy.Frames() {
			received++
		}
	}()

	// Overwhelm the stalled viewer's queue. The server never blocks:
	// frames keep flowing to the healthy viewer.
	frames := testFrames(600)
	for i := range frames {
		if err := pub.Send(&frames[i]); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("healthy viewer starved behind a slow one")
	}
	if received != 600 {
		t.Fatalf("healthy viewer received %d/600", received)
	}
	if s.Stats().ActiveViewers != 0 {
		t.Fatalf("ActiveViewers = %d after end", s.Stats().ActiveViewers)
	}
}

// TestViewerHangupMidStream verifies the server notices a viewer that
// disconnects abruptly and keeps serving others.
func TestViewerHangupMidStream(t *testing.T) {
	s, addr := startServer(t, ServerConfig{})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	v1, err := Subscribe(ctx, addr, "b1", "", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	v2, err := Subscribe(ctx, addr, "b1", "", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()

	frames := testFrames(20)
	for i := 0; i < 10; i++ {
		pub.Send(&frames[i])
	}
	v1.Close() // abrupt hangup
	for i := 10; i < 20; i++ {
		pub.Send(&frames[i])
	}
	pub.End()
	n := 0
	for range v2.Frames() {
		n++
	}
	if n != 20 {
		t.Fatalf("surviving viewer received %d/20", n)
	}
	// Active viewer gauge drains to zero.
	deadline := time.Now().Add(2 * time.Second)
	for s.Stats().ActiveViewers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("ActiveViewers = %d", s.Stats().ActiveViewers)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBroadcasterAbruptDisconnect: a crash (no MsgEnd) still ends the
// broadcast for viewers and fires OnEnd.
func TestBroadcasterAbruptDisconnect(t *testing.T) {
	ended := make(chan string, 1)
	_, addr := startServer(t, ServerConfig{OnEnd: func(id string) { ended <- id }})
	ctx := context.Background()
	pub, err := Publish(ctx, addr, "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Subscribe(ctx, addr, "b1", "", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	frames := testFrames(3)
	for i := range frames {
		pub.Send(&frames[i])
	}
	pub.Close() // abort without MsgEnd
	n := 0
	for range v.Frames() {
		n++
	}
	if n != 3 {
		t.Fatalf("viewer received %d/3 before crash", n)
	}
	select {
	case id := <-ended:
		if id != "b1" {
			t.Fatalf("OnEnd(%q)", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("OnEnd never fired after broadcaster crash")
	}
}

// TestConcurrentBroadcasts checks stream isolation.
func TestConcurrentBroadcasts(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	ctx := context.Background()
	pubA, err := Publish(ctx, addr, "a", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	pubB, err := Publish(ctx, addr, "b", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	vA, err := Subscribe(ctx, addr, "a", "", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vA.Close()
	vB, err := Subscribe(ctx, addr, "b", "", ViewerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer vB.Close()

	fa := testFrames(5)
	fb := testFrames(9)
	for i := range fa {
		pubA.Send(&fa[i])
	}
	for i := range fb {
		pubB.Send(&fb[i])
	}
	pubA.End()
	pubB.End()
	na, nb := 0, 0
	for range vA.Frames() {
		na++
	}
	for range vB.Frames() {
		nb++
	}
	if na != 5 || nb != 9 {
		t.Fatalf("cross-stream leak: a=%d b=%d", na, nb)
	}
}

// TestGarbageHandshakeIgnored: junk connections must not crash the server.
func TestGarbageHandshakeIgnored(t *testing.T) {
	_, addr := startServer(t, ServerConfig{})
	for _, junk := range [][]byte{
		{},
		{0xFF, 0xFF},
		{byte(wire.MsgFrame), 0, 0, 0, 1, 42}, // valid frame msg, but not a handshake
		{byte(wire.MsgHandshake), 0, 0, 0, 2, 1, 2}, // handshake with garbage body
	} {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Write(junk)
		conn.Close()
	}
	// Server still serves.
	pub, err := Publish(context.Background(), addr, "ok", "tok", nil)
	if err != nil {
		t.Fatalf("server unusable after junk: %v", err)
	}
	pub.End()
}
