package rtmp

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/media"
	"repro/internal/resilience"
	"repro/internal/rng"
	"repro/internal/testutil"
)

// connRecorder captures the raw conns a resilient viewer dials so the test
// can reset them mid-stream.
type connRecorder struct {
	mu    sync.Mutex
	conns []net.Conn
}

func (r *connRecorder) wrap(c net.Conn) net.Conn {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.conns = append(r.conns, c)
	return c
}

func (r *connRecorder) kill(i int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if i >= len(r.conns) {
		return false
	}
	r.conns[i].Close()
	return true
}

func (r *connRecorder) count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.conns)
}

func fastBackoff() resilience.Policy {
	return resilience.Policy{BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}
}

func TestResilientViewerResumesAfterReset(t *testing.T) {
	s := NewServer(ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pub, err := Publish(ctx, ln.Addr().String(), "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}

	rec := &connRecorder{}
	rv, err := SubscribeResilient(ctx, ln.Addr().String(), "b1", "", ReconnectConfig{
		Options: ViewerOptions{WrapConn: rec.wrap},
		Backoff: fastBackoff(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	const total = 60
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(9))
	go func() {
		for i := 0; i < total; i++ {
			f := enc.Next(time.Now())
			if err := pub.Send(&f); err != nil {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		pub.End()
	}()

	var seqs []uint64
	killed := false
	for rf := range rv.Frames() {
		seqs = append(seqs, rf.Frame.Seq)
		// Reset the first connection mid-stream, once.
		if !killed && len(seqs) == 10 {
			killed = rec.kill(0)
			if !killed {
				t.Fatal("no conn recorded to kill")
			}
		}
	}
	if err := rv.Err(); err != nil {
		t.Fatalf("terminal err = %v, want clean end", err)
	}
	if rv.Reconnects() < 1 {
		t.Fatalf("Reconnects = %d, want ≥ 1", rv.Reconnects())
	}
	if rec.count() < 2 {
		t.Fatalf("dialed %d conns, want ≥ 2", rec.count())
	}
	// The resumed stream must move forward: strictly increasing sequence
	// numbers, no duplicates, no reordering — gaps (frames pushed while
	// disconnected) are allowed.
	for i := 1; i < len(seqs); i++ {
		if seqs[i] <= seqs[i-1] {
			t.Fatalf("seq %d after %d at index %d: duplicate or reordered", seqs[i], seqs[i-1], i)
		}
	}
	// The viewer kept receiving after the reset.
	if seqs[len(seqs)-1] < 20 {
		t.Fatalf("last seq %d: viewer never resumed past the reset", seqs[len(seqs)-1])
	}
	if len(seqs) < 20 {
		t.Fatalf("received only %d frames", len(seqs))
	}
}

func TestResilientViewerCleanEndNoReconnect(t *testing.T) {
	s := NewServer(ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pub, err := Publish(ctx, ln.Addr().String(), "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	rv, err := SubscribeResilient(ctx, ln.Addr().String(), "b1", "", ReconnectConfig{Backoff: fastBackoff()})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(10))
	for i := 0; i < 5; i++ {
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			t.Fatal(err)
		}
	}
	pub.End()
	n := 0
	for range rv.Frames() {
		n++
	}
	if n != 5 {
		t.Fatalf("frames = %d, want 5", n)
	}
	if rv.Err() != nil || rv.Reconnects() != 0 {
		t.Fatalf("err=%v reconnects=%d after clean end", rv.Err(), rv.Reconnects())
	}
}

func TestResilientViewerEndWhileDisconnectedIsClean(t *testing.T) {
	s := NewServer(ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pub, err := Publish(ctx, ln.Addr().String(), "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	rec := &connRecorder{}
	rv, err := SubscribeResilient(ctx, ln.Addr().String(), "b1", "", ReconnectConfig{
		Options: ViewerOptions{WrapConn: rec.wrap},
		// Slow the redial enough that the broadcast ends first.
		Backoff: resilience.Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Jitter: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rv.Close()

	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(11))
	f := enc.Next(time.Now())
	if err := pub.Send(&f); err != nil {
		t.Fatal(err)
	}
	// Wait for the frame, cut the conn, then end the broadcast before the
	// viewer's redial fires: the resubscribe gets NotFound, a normal end.
	<-rv.Frames()
	rec.kill(0)
	pub.End()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-rv.Frames():
			if !ok {
				if err := rv.Err(); err != nil {
					t.Fatalf("terminal err = %v, want clean end-while-away", err)
				}
				return
			}
		case <-deadline:
			t.Fatal("viewer never terminated after broadcast ended while disconnected")
		}
	}
}

// TestResilientViewerNoGoroutineLeak drives repeated subscribe → reset →
// reconnect → close cycles and checks no goroutine born during the test
// survives it — the leak check the paper-scale fan-out depends on.
func TestResilientViewerNoGoroutineLeak(t *testing.T) {
	testutil.CheckGoroutines(t)
	s := NewServer(ServerConfig{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	pub, err := Publish(ctx, ln.Addr().String(), "b1", "tok", nil)
	if err != nil {
		t.Fatal(err)
	}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(12))
	stop := make(chan struct{})
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
			}
			f := enc.Next(time.Now())
			if pub.Send(&f) != nil {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	for cycle := 0; cycle < 5; cycle++ {
		rec := &connRecorder{}
		rv, err := SubscribeResilient(ctx, ln.Addr().String(), "b1", "", ReconnectConfig{
			Options: ViewerOptions{WrapConn: rec.wrap},
			Backoff: fastBackoff(),
		})
		if err != nil {
			t.Fatal(err)
		}
		got := 0
		for rf := range rv.Frames() {
			_ = rf
			got++
			if got == 3 {
				rec.kill(0) // force one reconnect per cycle
			}
			if got >= 8 {
				break
			}
		}
		rv.Close()
	}
	close(stop)
	pub.Close()
}
