package rtmp

import (
	"context"
	"crypto/tls"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/resilience"
	"repro/internal/wire"
)

// ReconnectConfig tunes SubscribeResilient.
type ReconnectConfig struct {
	// Options configure each underlying Subscribe.
	Options ViewerOptions
	// Backoff schedules redial delays; the zero value uses the
	// resilience defaults (10 ms base doubling to 1 s, jittered).
	Backoff resilience.Policy
	// MaxReconnects bounds redial attempts across the whole session
	// (each failed dial counts). Zero means 8; negative means unlimited.
	MaxReconnects int
	// TLS, when non-nil, subscribes over RTMPS.
	TLS *tls.Config
}

// ResilientViewer is a viewer session that survives connection drops: when
// the transport fails mid-stream it redials with backoff and resumes from
// the last received frame sequence number, deduplicating any frame it has
// already delivered — the auto-rejoin behaviour production clients exhibit
// under the bursty last-mile loss of §5.2. Frames pushed by the server
// while the viewer is disconnected are not replayed (RTMP fan-out keeps no
// per-viewer history), so a resumed stream may have a gap, never a repeat
// or reordering.
type ResilientViewer struct {
	frames chan ReceivedFrame
	cancel context.CancelFunc

	reconnects atomic.Int64
	lastSeq    atomic.Uint64

	mu  sync.Mutex
	err error
}

// SubscribeResilient opens a viewer session with auto-reconnect. The first
// subscribe is synchronous so handshake rejections surface immediately;
// after that, drops are handled in the background until the broadcast ends,
// ctx is done, or the reconnect budget is exhausted.
func SubscribeResilient(ctx context.Context, addr, broadcastID, token string, cfg ReconnectConfig) (*ResilientViewer, error) {
	if cfg.MaxReconnects == 0 {
		cfg.MaxReconnects = 8
	}
	if cfg.Options.DialTimeout == 0 {
		// A redial must never hang on kernel SYN-retransmit backoff: bound
		// every dial + handshake so a lost packet costs one backoff step,
		// not the whole session.
		cfg.Options.DialTimeout = 3 * time.Second
	}
	v, err := SubscribeTLS(ctx, addr, broadcastID, token, cfg.Options, cfg.TLS)
	if err != nil {
		return nil, err
	}
	queue := cfg.Options.Queue
	if queue == 0 {
		queue = 1024
	}
	ctx, cancel := context.WithCancel(ctx)
	rv := &ResilientViewer{
		frames: make(chan ReceivedFrame, queue),
		cancel: cancel,
	}
	go rv.run(ctx, v, addr, broadcastID, token, cfg)
	return rv, nil
}

func (rv *ResilientViewer) run(ctx context.Context, v *Viewer, addr, broadcastID, token string, cfg ReconnectConfig) {
	defer close(rv.frames)
	var haveAny bool
	var lastSeq uint64
	redials := 0
	for {
		clean := rv.forward(ctx, v, &haveAny, &lastSeq)
		err := v.Err()
		v.Close()
		if ctx.Err() != nil {
			rv.setErr(ctx.Err())
			return
		}
		if clean && err == nil {
			return // MsgEnd: broadcast over
		}

		// The transport dropped mid-stream: redial with backoff and
		// resume past frame lastSeq.
		for {
			if cfg.MaxReconnects >= 0 && redials >= cfg.MaxReconnects {
				rv.setErr(err)
				return
			}
			if serr := resilience.SleepCtx(ctx, cfg.Backoff.Delay(redials)); serr != nil {
				rv.setErr(serr)
				return
			}
			redials++
			nv, serr := SubscribeTLS(ctx, addr, broadcastID, token, cfg.Options, cfg.TLS)
			if serr == nil {
				v = nv
				rv.reconnects.Add(1)
				break
			}
			var rej *ErrRejected
			if errors.As(serr, &rej) {
				if rej.Status == wire.StatusUnavailable {
					// A recovered origin that is still waiting for its
					// publisher: the broadcast is coming back, keep
					// redialing with backoff.
					err = serr
					continue
				}
				if rej.Status == wire.StatusNotFound {
					// The broadcast ended while we were disconnected —
					// that is a normal end of stream, not a failure.
					return
				}
				// Any other handshake rejection is a deliberate server
				// answer, not a transport fault: redialing cannot fix
				// it, so stop instead of spinning on the backoff loop.
				rv.setErr(serr)
				return
			}
			if errors.Is(serr, ErrFull) {
				// The RTMP slot was taken while we were away; a real
				// client would fall back to HLS. Terminal here.
				rv.setErr(serr)
				return
			}
			err = serr
		}
	}
}

// forward drains one underlying viewer into the output channel, deduping
// by frame sequence. It reports whether the viewer's stream closed.
func (rv *ResilientViewer) forward(ctx context.Context, v *Viewer, haveAny *bool, lastSeq *uint64) bool {
	for {
		select {
		case <-ctx.Done():
			return false
		case rf, ok := <-v.Frames():
			if !ok {
				return true
			}
			if *haveAny && rf.Frame.Seq <= *lastSeq {
				continue // already delivered before the drop
			}
			*lastSeq, *haveAny = rf.Frame.Seq, true
			rv.lastSeq.Store(rf.Frame.Seq)
			select {
			case rv.frames <- rf:
			case <-ctx.Done():
				return false
			}
		}
	}
}

func (rv *ResilientViewer) setErr(err error) {
	rv.mu.Lock()
	rv.err = err
	rv.mu.Unlock()
}

// Frames returns the deduplicated frame channel; it closes when the
// broadcast ends, ctx is done, or reconnecting gave up.
func (rv *ResilientViewer) Frames() <-chan ReceivedFrame { return rv.frames }

// Err reports the terminal error, or nil after a clean end of broadcast.
// Valid once Frames is closed.
func (rv *ResilientViewer) Err() error {
	rv.mu.Lock()
	defer rv.mu.Unlock()
	return rv.err
}

// Reconnects returns how many times the session re-established transport.
func (rv *ResilientViewer) Reconnects() int64 { return rv.reconnects.Load() }

// LastSeq returns the highest frame sequence delivered so far.
func (rv *ResilientViewer) LastSeq() uint64 { return rv.lastSeq.Load() }

// Close tears the session down and stops reconnecting.
func (rv *ResilientViewer) Close() error {
	rv.cancel()
	return nil
}
