package rtmp

import (
	"crypto/ed25519"
	"time"

	"repro/internal/media"
	"repro/internal/rng"
)

// testFramesB builds frames without a *testing.T (usable from benchmarks).
func testFramesB(n int) []media.Frame {
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(99))
	base := time.Now()
	frames := make([]media.Frame, n)
	for i := range frames {
		frames[i] = enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
	}
	return frames
}

func generateBenchKeys() (ed25519.PublicKey, ed25519.PrivateKey, error) {
	return ed25519.GenerateKey(nil)
}
