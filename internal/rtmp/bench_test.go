package rtmp

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

// BenchmarkPushThroughput measures frames/second through a full
// publisher→server→viewer pipeline on loopback — the per-frame push cost
// behind Figure 14.
func BenchmarkPushThroughput(b *testing.B) {
	for _, nViewers := range []int{1, 10, 50} {
		b.Run(fmt.Sprintf("viewers=%d", nViewers), func(b *testing.B) {
			s := NewServer(ServerConfig{ViewerQueue: 1 << 16})
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ln, err := s.Listen(ctx, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			addr := ln.Addr().String()

			pub, err := Publish(ctx, addr, "bench", "tok", nil)
			if err != nil {
				b.Fatal(err)
			}
			var wg sync.WaitGroup
			viewers := make([]*Viewer, 0, nViewers)
			for i := 0; i < nViewers; i++ {
				v, err := Subscribe(ctx, addr, "bench", "", ViewerOptions{Queue: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				viewers = append(viewers, v)
				wg.Add(1)
				go func(v *Viewer) {
					defer wg.Done()
					for range v.Frames() {
					}
				}(v)
			}

			frames := testFramesB(256)
			b.SetBytes(int64(len(frames[0].Payload)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pub.Send(&frames[i%len(frames)]); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			pub.End()
			// Teardown is forceful: the timed section is the send loop;
			// waiting for every viewer to drain its backlog would bench
			// the drain, not the push.
			for _, v := range viewers {
				v.Close()
			}
			wg.Wait()
		})
	}
}

func BenchmarkSignedPush(b *testing.B) {
	pub, priv, err := generateBenchKeys()
	if err != nil {
		b.Fatal(err)
	}
	s := NewServer(ServerConfig{Auth: keyAuth{pub: pub}, ViewerQueue: 1 << 16})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ln, err := s.Listen(ctx, "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()

	p, err := Publish(ctx, ln.Addr().String(), "bench", "tok", priv)
	if err != nil {
		b.Fatal(err)
	}
	frames := testFramesB(256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Send(&frames[i%len(frames)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	p.End()
}
