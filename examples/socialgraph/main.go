// Social graph: generate the Periscope-like follow graph at 1:100 scale,
// compute the Table 2 statistics, and demonstrate the Figure 7 link between
// follower counts and broadcast audiences through the notification model.
package main

import (
	"fmt"
	"sort"

	"repro/internal/social"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	fmt.Println("generating the follow graph (120K users, 1:100 scale)…")
	cfg := social.DefaultConfig()
	g := social.Generate(cfg)
	m := social.ComputeMetrics(g, social.MetricsOptions{Seed: 2})
	fmt.Println()
	fmt.Println(social.Table2(m))

	// Follower distribution: the heavy tail behind Fig. 7.
	counts := g.FollowerCounts()
	sort.Sort(sort.Reverse(sort.IntSlice(counts)))
	fmt.Println("top follower counts (celebrity tail):", counts[:5])
	var fs []float64
	for _, c := range counts {
		fs = append(fs, float64(c))
	}
	cdf := stats.NewCDF(fs)
	fmt.Printf("median followers: %.0f; p99: %.0f; max: %.0f\n\n",
		cdf.Quantile(0.5), cdf.Quantile(0.99), cdf.Quantile(1))

	// Drive a month of broadcasts with the graph and measure Fig. 7's
	// correlation.
	prof := workload.Periscope(100)
	prof.Days = 30
	prof.BroadcasterPool = cfg.Nodes
	ds := workload.Generate(prof, g.FollowerCounts(), 11)
	var ffs, vvs []float64
	for _, b := range ds.Broadcasts {
		if b.Followers > 0 && b.Viewers > 0 {
			ffs = append(ffs, float64(b.Followers))
			vvs = append(vvs, float64(b.Viewers))
		}
	}
	fmt.Printf("30 days of broadcasts: %d; follower→viewer Spearman ρ = %.2f\n",
		len(ds.Broadcasts), stats.SpearmanRho(ffs, vvs))
	fmt.Println("(paper Fig. 7: users with more followers generate more popular broadcasts)")
}
