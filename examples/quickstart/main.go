// Quickstart: boot the full reproduced platform in-process, start a
// broadcast, watch it over both delivery paths (RTMP push and HLS polling),
// and interact through the message channel — the complete Figure 8
// architecture in one program.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

func main() {
	// 1. Boot the platform: control plane, 8 Wowza-like origins,
	//    23 Fastly-like edges, message hub — all on loopback.
	platform := core.NewPlatform(core.PlatformConfig{
		ChunkDuration:   time.Second, // shorter chunks keep the demo snappy
		RTMPViewerLimit: 100,
	})
	ctx := context.Background()
	if err := platform.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()
	fmt.Println("platform up:", platform.ControlURL())

	// 2. Register a broadcaster and go live from New York.
	cc := &control.Client{BaseURL: platform.ControlURL()}
	uid, err := cc.Register(ctx, "alice")
	if err != nil {
		log.Fatal(err)
	}
	nyc := geo.Location{City: "New York", Continent: geo.NorthAmerica, Lat: 40.71, Lon: -74.01}
	grant, err := cc.StartBroadcast(ctx, uid, nyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("broadcast %s live via origin %s\n", grant.BroadcastID, grant.OriginID)

	// 3. The broadcaster uploads 2.5 s of video over persistent RTMP.
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
		ticker := time.NewTicker(media.FrameDuration)
		defer ticker.Stop()
		for i := 0; i < 63; i++ {
			<-ticker.C
			f := enc.Next(time.Now())
			if err := pub.Send(&f); err != nil {
				return
			}
		}
		pub.End()
	}()

	// 4. An early viewer joins: routed to low-latency RTMP (§4.1).
	viewGrant, err := cc.Join(ctx, 1001, grant.BroadcastID, nyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("first viewer routed to:", viewGrant.Protocol)
	viewer, err := rtmp.Subscribe(ctx, viewGrant.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()

	// 5. The viewer hearts the stream through the PubNub-like channel.
	mc := &pubsub.Client{BaseURL: viewGrant.MessageURL}
	if _, err := mc.Publish(ctx, grant.BroadcastID, pubsub.Event{
		UserID: "viewer-1001", Kind: pubsub.KindHeart,
	}); err != nil {
		log.Fatal(err)
	}
	if _, err := mc.Publish(ctx, grant.BroadcastID, pubsub.Event{
		UserID: "viewer-1001", Kind: pubsub.KindComment, Text: "hello from the quickstart!",
	}); err != nil {
		log.Fatal(err)
	}

	// 6. Drain the RTMP stream and report per-frame latency.
	var n int
	var totalDelay time.Duration
	for rf := range viewer.Frames() {
		n++
		totalDelay += rf.ReceivedAt.Sub(rf.Frame.CapturedAt)
	}
	fmt.Printf("RTMP viewer: %d frames, mean capture→screen delay %v\n", n, totalDelay/time.Duration(n))

	// 7. A late viewer reads the same content over HLS from its edge.
	hlsClient := &hls.Client{BaseURL: viewGrant.HLSBaseURL}
	cl, err := hlsClient.FetchChunkList(ctx, grant.BroadcastID, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HLS edge has %d chunks (playlist v%d, ended=%v)\n", len(cl.Chunks), cl.Version, cl.Ended)
	chunk, err := hlsClient.FetchChunk(ctx, grant.BroadcastID, cl.Chunks[0].Seq)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("downloaded chunk %d: %d frames, %d bytes\n", chunk.Seq, len(chunk.Frames), chunk.Size())

	// 8. Interactions, as recorded by the channel.
	comments, hearts := platform.Hub.Counts(grant.BroadcastID)
	fmt.Printf("interactions: %d comment(s), %d heart(s)\n", comments, hearts)
}
