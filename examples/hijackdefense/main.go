// Hijack & defense: walk through §7 step by step on a local platform — the
// unauthenticated RTMP upload is silently rewritten by an on-path attacker,
// every viewer sees black frames while the broadcaster sees nothing wrong;
// then the Ed25519 per-frame signature defense (registered over the secure
// control channel) stops the same attacker cold.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/security"
)

const nFrames = 50

func main() {
	ctx := context.Background()
	w := geo.WowzaSites()
	f := geo.FastlySites()
	platform := core.NewPlatform(core.PlatformConfig{
		OriginSites:   []geo.Datacenter{w[0]},
		EdgeSites:     []geo.Datacenter{f[8]},
		ChunkDuration: time.Second,
	})
	if err := platform.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()
	cc := &control.Client{BaseURL: platform.ControlURL()}

	fmt.Println("== Phase 1: the attack (unsigned stream) ==")
	tampered, total := runPhase(ctx, cc, false)
	fmt.Printf("viewer received %d frames; %d were silently replaced with black video.\n", total, tampered)
	fmt.Println("the broadcaster's own screen showed the original — exactly Figure 18.")

	fmt.Println("\n== Phase 2: the §7.2 defense (signed stream) ==")
	tampered, total = runPhase(ctx, cc, true)
	fmt.Printf("server dropped every forged frame: viewer received %d tampered frames (of %d sent).\n", tampered, total)
	fmt.Println("signature verification at the origin (and viewer) makes the rewrite detectable.")
}

// runPhase starts a broadcast whose upload path passes through the MITM and
// returns (tamperedFramesSeenByViewer, framesSeenByViewer).
func runPhase(ctx context.Context, cc *control.Client, signed bool) (int, int) {
	uid, err := cc.Register(ctx, "victim")
	if err != nil {
		log.Fatal(err)
	}
	grant, err := cc.StartBroadcast(ctx, uid, geo.Location{City: "Ashburn", Lat: 39, Lon: -77})
	if err != nil {
		log.Fatal(err)
	}

	var signer []byte
	var verifier []byte
	if signed {
		pub, priv, err := security.GenerateKeyPair()
		if err != nil {
			log.Fatal(err)
		}
		// Key exchange happens over the authenticated control channel
		// — the one path the attacker cannot touch.
		if err := cc.RegisterPublicKey(ctx, grant.BroadcastID, grant.Token, pub); err != nil {
			log.Fatal(err)
		}
		signer, verifier = priv, pub
	}

	// The attacker sits on the broadcaster's WiFi (ARP spoofing analog):
	// the victim's RTMP connection transparently passes through it.
	mitm := security.NewInterceptor(security.InterceptorConfig{
		Target:       grant.RTMPAddr,
		Tamper:       security.BlackFrames(),
		TamperSigned: true,
	})
	mctx, cancel := context.WithCancel(ctx)
	defer cancel()
	mln, err := mitm.Listen(mctx, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer mitm.Close()

	pub, err := rtmp.Publish(ctx, mln.Addr().String(), grant.BroadcastID, grant.Token, signer)
	if err != nil {
		log.Fatal(err)
	}
	viewer, err := rtmp.Subscribe(ctx, grant.RTMPAddr, grant.BroadcastID, "", rtmp.ViewerOptions{PubKey: verifier})
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()

	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(9))
	var sent []media.Frame
	for i := 0; i < nFrames; i++ {
		fr := enc.Next(time.Now())
		sent = append(sent, fr)
		if err := pub.Send(&fr); err != nil {
			break
		}
	}
	pub.End()

	var received []media.Frame
	for rf := range viewer.Frames() {
		received = append(received, rf.Frame)
	}
	return security.AuditFrames(sent, received), len(received)
}
