// Measurement pipeline: the paper's complete workflow in one process —
// run the platform, generate demo traffic, crawl the global list exactly as
// §3.1 describes (with anonymization), and compute the §3 statistics from
// the captured records. This is cmd/livesim + cmd/crawl + cmd/analyze
// composed as a library.
package main

import (
	"context"
	"fmt"
	"log"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/crawler"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/trace"
)

const nBroadcasts = 6

func main() {
	platform := core.NewPlatform(core.PlatformConfig{ChunkDuration: time.Second})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := platform.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()
	cc := &control.Client{BaseURL: platform.ControlURL()}

	// The crawler watches the global list at the paper's effective rate.
	var mu sync.Mutex
	var records []trace.BroadcastRecord
	var delays []trace.DelayRecord
	cr, err := crawler.New(crawler.Config{
		Control:       cc,
		ListInterval:  50 * time.Millisecond,
		TapRTMP:       true,
		WatchMessages: true,
		Anonymizer:    trace.NewAnonymizer([]byte("demo-irb-key")),
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			records = append(records, r)
			mu.Unlock()
		},
		OnDelay: func(r trace.DelayRecord) {
			mu.Lock()
			delays = append(delays, r)
			mu.Unlock()
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	crawlCtx, crawlCancel := context.WithCancel(ctx)
	crawlDone := make(chan struct{})
	go func() { cr.Run(crawlCtx); close(crawlDone) }()

	// Demo traffic: short broadcasts with hearts.
	src := rng.New(42)
	cities := geo.CityCatalog()
	var wg sync.WaitGroup
	for b := 0; b < nBroadcasts; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			runBroadcast(ctx, cc, uint64(b), cities[b%len(cities)], src.Uint64())
		}(b)
		time.Sleep(120 * time.Millisecond)
	}
	wg.Wait()

	// Let the crawler finish its monitors, then stop it.
	deadline := time.Now().Add(20 * time.Second)
	for cr.Stats().BroadcastsDone.Load() < nBroadcasts {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	crawlCancel()
	<-crawlDone

	mu.Lock()
	defer mu.Unlock()
	fmt.Printf("crawled %d broadcasts (%d list polls, %d frames tapped)\n\n",
		len(records), cr.Stats().ListPolls.Load(), cr.Stats().FramesTapped.Load())

	s := analysis.Summarize(records)
	fmt.Printf("Table 1 analog: %d broadcasts by %d broadcasters, %d hearts, %d comments\n",
		s.Broadcasts, s.Broadcasters, s.Hearts, s.Comments)
	fmt.Printf("(broadcaster IDs are HMAC pseudonyms, e.g. %q — §3.1 anonymization)\n\n", records[0].Broadcaster)

	durations := analysis.DurationCDF(records)
	fmt.Printf("Fig. 3 analog: median broadcast %.1fs, p95 %.1fs\n",
		durations.Quantile(0.5)*60, durations.Quantile(0.95)*60)

	for _, d := range analysis.SummarizeDelays(delays) {
		fmt.Printf("§4.3 analog: %s delivery delay mean %v (p95 %v) over %d observations\n",
			d.Kind, d.Mean.Round(10*time.Microsecond), d.P95.Round(10*time.Microsecond), d.N)
	}
}

func runBroadcast(ctx context.Context, cc *control.Client, user uint64, loc geo.Location, seed uint64) {
	uid, err := cc.Register(ctx, fmt.Sprintf("demo-%d", user))
	if err != nil {
		return
	}
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		return
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		return
	}
	src := rng.New(seed)
	enc := media.NewEncoder(media.EncoderConfig{}, src)
	mc := &pubsub.Client{BaseURL: grant.MessageURL}
	frames := 30 + src.Intn(60)
	for i := 0; i < frames; i++ {
		f := enc.Next(time.Now())
		if pub.Send(&f) != nil {
			return
		}
		if src.Bool(0.1) {
			mc.Publish(ctx, grant.BroadcastID, pubsub.Event{
				UserID: fmt.Sprintf("fan-%d", src.Intn(20)), Kind: pubsub.KindHeart,
			})
		}
		time.Sleep(4 * time.Millisecond)
	}
	pub.End()
}
