// Private broadcast: the §2.1 invite-only mode over RTMPS (§7.2). The host
// invites one friend; the platform mints per-viewer tokens, hides the
// broadcast from the public global list, and moves the video path onto TLS
// — which is why the §7 tampering attack cannot touch private streams.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/rng"
	"repro/internal/rtmp"
	"repro/internal/security"
)

func main() {
	platform := core.NewPlatform(core.PlatformConfig{ChunkDuration: time.Second})
	ctx := context.Background()
	if err := platform.Start(ctx); err != nil {
		log.Fatal(err)
	}
	defer platform.Stop()
	cc := &control.Client{BaseURL: platform.ControlURL()}

	host, _ := cc.Register(ctx, "host")
	friend, _ := cc.Register(ctx, "friend")
	stranger, _ := cc.Register(ctx, "stranger")

	nyc := geo.Location{City: "New York", Continent: geo.NorthAmerica, Lat: 40.71, Lon: -74.01}
	grant, err := cc.StartPrivateBroadcast(ctx, host, nyc, []uint64{friend})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("private broadcast %s: upload via RTMPS %s\n", grant.BroadcastID, grant.RTMPSAddr)

	// The CA certificate arrives over the authenticated control channel;
	// a data-path attacker never gets to substitute it.
	tlsCfg, err := security.ClientConfigFromPEM(grant.CAPEM)
	if err != nil {
		log.Fatal(err)
	}
	pub, err := rtmp.PublishTLS(ctx, grant.RTMPSAddr, grant.BroadcastID, grant.Token, nil, tlsCfg)
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
		ticker := time.NewTicker(media.FrameDuration)
		defer ticker.Stop()
		for i := 0; i < 50; i++ {
			<-ticker.C
			f := enc.Next(time.Now())
			if pub.Send(&f) != nil {
				return
			}
		}
		pub.End()
	}()

	// The public list shows nothing.
	list, _ := cc.GlobalList(ctx)
	fmt.Printf("public global list: %d broadcasts (private stays hidden)\n", len(list))

	// The stranger is refused; the friend gets a personal token.
	if _, err := cc.Join(ctx, stranger, grant.BroadcastID, nyc); errors.Is(err, control.ErrNotInvited) {
		fmt.Println("stranger join: refused (not invited)")
	}
	vg, err := cc.Join(ctx, friend, grant.BroadcastID, nyc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("friend join: protocol=%s, per-viewer token issued\n", vg.Protocol)

	viewerTLS, err := security.ClientConfigFromPEM(vg.CAPEM)
	if err != nil {
		log.Fatal(err)
	}
	viewer, err := rtmp.SubscribeTLS(ctx, vg.RTMPSAddr, grant.BroadcastID, vg.ViewerToken, rtmp.ViewerOptions{}, viewerTLS)
	if err != nil {
		log.Fatal(err)
	}
	defer viewer.Close()
	n := 0
	for range viewer.Frames() {
		n++
	}
	fmt.Printf("friend watched %d frames over TLS\n", n)
	fmt.Println("(§7's interceptor cannot parse, let alone rewrite, this stream — see internal/core/private_test.go)")
}
