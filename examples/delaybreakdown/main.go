// Delay breakdown: reproduce the paper's §4.3 controlled experiment — one
// broadcaster, one RTMP viewer and one HLS viewer on stable WiFi — and print
// the Figure 11 per-component decomposition of end-to-end delay, then show
// how the picture changes on worse last-mile links.
package main

import (
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/netsim"
)

func printRow(name string, c delay.Components) {
	fmt.Printf("%-10s upload=%6.2fs chunking=%5.2fs w2f=%5.2fs polling=%5.2fs lastmile=%5.2fs buffering=%5.2fs  TOTAL=%6.2fs\n",
		name, c.Upload.Seconds(), c.Chunking.Seconds(), c.Wowza2Fastly.Seconds(),
		c.Polling.Seconds(), c.LastMile.Seconds(), c.Buffering.Seconds(), c.Total().Seconds())
}

func main() {
	fmt.Println("Controlled experiment (10 repetitions, WiFi, SF ↔ San Jose origin):")
	r, h := delay.RunControlled(delay.ControlledConfig{Seed: 42})
	printRow("RTMP", r)
	printRow("HLS", h)
	fmt.Printf("\nHLS pays %.1f× RTMP's delay; buffering alone is %.1fs of it.\n",
		float64(h.Total())/float64(r.Total()), h.Buffering.Seconds())
	fmt.Println("Paper Fig. 11: RTMP ≈1.4s, HLS ≈11.7s (buffering 6.9, chunking 3, polling 1.2, W2F 0.3).")

	fmt.Println("\nSame experiment on degraded last-mile links:")
	for _, prof := range []netsim.AccessProfile{netsim.LTE, netsim.Congested} {
		r, h := delay.RunControlled(delay.ControlledConfig{
			Seed:          42,
			UploadProfile: prof,
			ViewerProfile: prof,
		})
		printRow("RTMP/"+prof.Name, r)
		printRow("HLS/"+prof.Name, h)
	}

	fmt.Println("\nEffect of chunk size (§5.2 trade-off):")
	for _, chunk := range []time.Duration{1500 * time.Millisecond, 3 * time.Second, 10 * time.Second} {
		_, h := delay.RunControlled(delay.ControlledConfig{
			Seed:          42,
			ChunkDuration: chunk,
			PollInterval:  time.Duration(float64(chunk) * 0.93),
			HLSPreBuffer:  3 * chunk,
		})
		printRow(fmt.Sprintf("HLS %gs", chunk.Seconds()), h)
	}
}
