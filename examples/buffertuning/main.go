// Buffer tuning: the §6 question — can Periscope's client pre-buffer be cut
// without hurting playback? Replays trace-driven HLS chunk arrivals through
// the decompiled buffering strategy across P values and prints the
// stall/delay trade-off that motivates the paper's "9s → 6s, half the
// latency, same smoothness" recommendation.
package main

import (
	"fmt"
	"time"

	"repro/internal/delay"
	"repro/internal/geo"
	"repro/internal/netsim"
	"repro/internal/player"
	"repro/internal/rng"
	"repro/internal/stats"
)

func main() {
	const nBroadcasts = 120
	src := rng.New(7)
	sf := geo.Location{City: "San Francisco", Continent: geo.NorthAmerica, Lat: 37.77, Lon: -122.42}
	origin := geo.Nearest(sf, geo.WowzaSites())
	edge := geo.Nearest(sf, geo.FastlySites())

	// Build per-broadcast HLS item traces (10% bursty uploaders, as the
	// paper observed behind Fig. 16's tail).
	var itemSets [][]player.Item
	for i := 0; i < nBroadcasts; i++ {
		model := netsim.NewModel(netsim.Params{}, src.Split(fmt.Sprintf("m%d", i)))
		tr := delay.GenTrace(delay.TraceConfig{
			Duration:    3 * time.Minute,
			Broadcaster: sf,
			Origin:      origin,
			Upload:      netsim.WiFi,
			Bursty:      src.Bool(0.10),
		}, model, src.Split(fmt.Sprintf("t%d", i)))
		edgeAt := delay.EdgeArrivals(tr, origin, delay.EdgePath{Edge: edge}, model)
		v := delay.ViewerConfig{
			Location: sf, LastMile: netsim.WiFi,
			PollInterval: 2800 * time.Millisecond,
			PollPhase:    time.Duration(src.Float64() * float64(2800*time.Millisecond)),
		}
		items, _, _ := delay.HLSItems(tr, edgeAt, v, model)
		itemSets = append(itemSets, items)
	}

	fmt.Println("HLS client pre-buffer sweep (120 trace-driven broadcasts):")
	fmt.Printf("%-6s %-22s %-22s\n", "P", "mean stall ratio", "mean buffering delay")
	type row struct {
		p     time.Duration
		stall float64
		delay float64
	}
	var rows []row
	for _, p := range []time.Duration{0, 3 * time.Second, 6 * time.Second, 9 * time.Second, 12 * time.Second} {
		var stalls, delays []float64
		for _, items := range itemSets {
			res := player.Simulate(items, player.Config{PreBuffer: p})
			stalls = append(stalls, res.StallRatio)
			delays = append(delays, res.MeanBufferingDelay.Seconds())
		}
		r := row{p: p, stall: stats.Mean(stalls), delay: stats.Mean(delays)}
		rows = append(rows, r)
		fmt.Printf("%-6s %-22.4f %-20.2fs\n", p, r.stall, r.delay)
	}

	var p6, p9 row
	for _, r := range rows {
		if r.p == 6*time.Second {
			p6 = r
		}
		if r.p == 9*time.Second {
			p9 = r
		}
	}
	fmt.Printf("\nPeriscope ships P=9s. P=6s keeps stalls at %.4f (vs %.4f) while cutting buffering delay %.0f%% (%.1fs → %.1fs) — the paper's §6 conclusion.\n",
		p6.stall, p9.stall, 100*(1-p6.delay/p9.delay), p9.delay, p6.delay)
}
