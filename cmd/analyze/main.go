// Command analyze computes the paper's §3 statistics from crawler output
// (see cmd/crawl): Table 1 aggregates, daily series (Figs. 1–2), duration,
// viewer and interaction CDFs (Figs. 3–5), per-user activity (Fig. 6), and
// the §4.3 delay summary.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/analysis"
	"repro/internal/stats"
	"repro/internal/trace"
)

func main() {
	var (
		in     = flag.String("in", "broadcasts.jsonl", "broadcast records (from cmd/crawl)")
		delays = flag.String("delays", "", "optional delay records (from cmd/crawl)")
		cdfPts = flag.Int("cdf-points", 20, "points per printed CDF")
	)
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	recs, err := trace.ReadBroadcasts(f)
	f.Close()
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("no broadcast records")
		return
	}

	s := analysis.Summarize(recs)
	t := &stats.Table{Title: "Dataset summary (Table 1 analog)", Headers: []string{"Metric", "Value"}}
	t.AddRow("Broadcasts", fmt.Sprintf("%d", s.Broadcasts))
	t.AddRow("Broadcasters", fmt.Sprintf("%d", s.Broadcasters))
	t.AddRow("Viewer joins", fmt.Sprintf("%d", s.TotalJoins))
	t.AddRow("Unique viewers", fmt.Sprintf("%d", s.UniqueViewers))
	t.AddRow("Comments", fmt.Sprintf("%d", s.Comments))
	t.AddRow("Hearts", fmt.Sprintf("%d", s.Hearts))
	t.AddRow("Window", fmt.Sprintf("%s – %s", s.FirstStart.Format("2006-01-02 15:04"), s.LastEnd.Format("2006-01-02 15:04")))
	fmt.Println(t)

	fmt.Println("Daily series (Fig. 1/2 analog):")
	for _, d := range analysis.DailySeries(recs) {
		fmt.Printf("  %s  broadcasts=%d broadcasters=%d viewers=%d\n",
			d.Date.Format("2006-01-02"), d.Broadcasts, d.Broadcasters, d.Viewers)
	}

	printCDF := func(name string, c *stats.CDF, unit string) {
		fmt.Printf("\n%s (N=%d):\n", name, c.N())
		for _, p := range c.Points(*cdfPts) {
			fmt.Printf("  %8.2f %s  %5.2f\n", p.X, unit, p.Y)
		}
	}
	printCDF("Broadcast length CDF (Fig. 3 analog)", analysis.DurationCDF(recs), "min")
	printCDF("Viewers per broadcast CDF (Fig. 4 analog)", analysis.ViewersCDF(recs), "joins")
	comments, hearts := analysis.InteractionCDFs(recs)
	printCDF("Comments per broadcast CDF (Fig. 5 analog)", comments, "msgs")
	printCDF("Hearts per broadcast CDF (Fig. 5 analog)", hearts, "msgs")

	views, creates := analysis.UserActivity(recs)
	fmt.Printf("\nPer-user activity (Fig. 6 analog): %d viewers, %d creators\n", len(views), len(creates))
	topOf := func(m map[string]int) []string {
		type kv struct {
			k string
			v int
		}
		var all []kv
		for k, v := range m {
			all = append(all, kv{k, v})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
		out := []string{}
		for i := 0; i < 3 && i < len(all); i++ {
			out = append(out, fmt.Sprintf("%s(%d)", all[i].k, all[i].v))
		}
		return out
	}
	fmt.Printf("  most active viewers:  %v\n", topOf(views))
	fmt.Printf("  most active creators: %v\n", topOf(creates))

	if *delays != "" {
		df, err := os.Open(*delays)
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		drecs, err := trace.ReadDelays(df)
		df.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "analyze: %v\n", err)
			os.Exit(1)
		}
		fmt.Println("\nDelivery delay summary (§4.3 analog):")
		for _, d := range analysis.SummarizeDelays(drecs) {
			fmt.Printf("  %-6s n=%-6d mean=%v p50=%v p95=%v std=%v\n",
				d.Kind, d.N, d.Mean.Round(0), d.P50.Round(0), d.P95.Round(0), d.StdDev.Round(0))
		}
	}
}
