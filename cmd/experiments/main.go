// Command experiments regenerates the paper's tables and figures from the
// reproduced system.
//
// Usage:
//
//	experiments -list
//	experiments -run fig11
//	experiments -run all [-scale 100] [-seed 1] [-broadcasts 300] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/experiments"
)

func main() {
	var (
		runID      = flag.String("run", "all", "experiment id to run, or 'all'")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		scale      = flag.Float64("scale", 100, "workload scale divisor (1 = full paper volume)")
		seed       = flag.Uint64("seed", 1, "random seed")
		broadcasts = flag.Int("broadcasts", 300, "trace count for delay experiments")
		quick      = flag.Bool("quick", false, "reduced sizes for a fast smoke run")
		values     = flag.Bool("values", false, "also print the key metric values")
		outDir     = flag.String("out", "", "also write each experiment to <out>/<id>.txt")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-22s %s\n", id, experiments.Title(id))
		}
		return
	}

	cfg := experiments.Config{
		Scale:      *scale,
		Seed:       *seed,
		Broadcasts: *broadcasts,
		Quick:      *quick,
	}
	ids := []string{*runID}
	if *runID == "all" {
		ids = experiments.IDs()
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}
	for _, id := range ids {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("==== %s: %s ====\n\n%s\n", res.ID, res.Title, res.Text)
		if *outDir != "" {
			path := filepath.Join(*outDir, res.ID+".txt")
			if err := os.WriteFile(path, []byte(res.Text), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: write %s: %v\n", path, err)
				os.Exit(1)
			}
		}
		if *values {
			keys := make([]string, 0, len(res.Values))
			for k := range res.Values {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				fmt.Printf("  %s = %g\n", k, res.Values[k])
			}
			fmt.Println()
		}
	}
}
