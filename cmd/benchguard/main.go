// Command benchguard runs the delivery hot-path benchmarks (BenchmarkFanout,
// BenchmarkEdgePoll, BenchmarkIngest, BenchmarkControlRecovery) and fails
// when allocations per operation regress past the recorded baselines in
// BENCH_fanout.json. It guards the PR-3 hot-path work (encode-once fan-out,
// raw-bytes edge serving), the metrics layer's zero-alloc promise, the PR-6
// journaling budget (origin ingest with the write-ahead journal enabled must
// stay within 2 allocs/frame, so a journal append that encodes or syncs on
// the caller's path shows up here as an ingest regression), and the PR-7
// control-plane recovery path (full journal replay of a 256-record control
// log; a replay that re-journals or decodes lazily shows up here).
//
// Allocations are the guarded signal because they are deterministic for a
// fixed code path; ns/op depends on the host and is reported but not judged.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// tolerance is how many extra allocs/op a benchmark may show over its
// baseline before benchguard fails. Allocation counts are deterministic in
// steady state but fixed-count runs include warm-up effects (pool fills,
// map growth), so exact matching would flap.
const tolerance = 2

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baselineFile struct {
	Fanout   map[string]json.RawMessage `json:"fanout"`
	EdgePoll map[string]json.RawMessage `json:"edge_poll"`
	Ingest   map[string]json.RawMessage `json:"ingest"`
	Recovery map[string]json.RawMessage `json:"control_recovery"`
}

type fanoutEntry struct {
	After measurement `json:"after"`
}

type edgePollEntry struct {
	AfterClonePath measurement `json:"after_clone_path"`
	AfterRawPath   measurement `json:"after_raw_path"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFanout/viewers=10-8  20000  31096 ns/op  25.68 MB/s  581 B/op  2 allocs/op
//
// The MB/s column appears only for benchmarks that call b.SetBytes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(?:[\d.]+ MB/s\s+)?([\d.]+) B/op\s+(\d+) allocs/op`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	raw, err := os.ReadFile("BENCH_fanout.json")
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse BENCH_fanout.json: %w", err)
	}

	// budgets maps the full benchmark name (cpu suffix stripped) to the
	// baseline allocs/op it must stay within.
	budgets := make(map[string]float64)
	for sub, rawEntry := range base.Fanout {
		if !strings.HasPrefix(sub, "viewers=") {
			continue // skip prose keys like "allocs_reduction"
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("fanout %q: %w", sub, err)
		}
		budgets["BenchmarkFanout/"+sub] = e.After.AllocsPerOp
	}
	for sub, rawEntry := range base.EdgePoll {
		if !strings.HasPrefix(sub, "broadcasts=") {
			continue
		}
		var e edgePollEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("edge_poll %q: %w", sub, err)
		}
		budgets["BenchmarkEdgePoll/"+sub] = e.AfterClonePath.AllocsPerOp
		budgets["BenchmarkEdgePoll/"+sub+"/raw"] = e.AfterRawPath.AllocsPerOp
	}
	for sub, rawEntry := range base.Ingest {
		if !strings.HasPrefix(sub, "journal=") {
			continue
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("ingest %q: %w", sub, err)
		}
		budgets["BenchmarkIngest/"+sub] = e.After.AllocsPerOp
	}
	for sub, rawEntry := range base.Recovery {
		if !strings.HasPrefix(sub, "records=") {
			continue
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("control_recovery %q: %w", sub, err)
		}
		budgets["BenchmarkControlRecovery/"+sub] = e.After.AllocsPerOp
	}
	if len(budgets) == 0 {
		return fmt.Errorf("no baselines found in BENCH_fanout.json")
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "Fanout|EdgePoll|Ingest|ControlRecovery",
		"-benchmem", "-benchtime", "2000x", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("bench run failed: %w\n%s", err, out)
	}

	failures := 0
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		budget, ok := budgets[name]
		if !ok {
			continue
		}
		seen[name] = true
		allocs, _ := strconv.ParseFloat(m[4], 64)
		verdict := "ok"
		if allocs > budget+tolerance {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("%-40s allocs/op=%g baseline=%g %s (ns/op=%s)\n", name, allocs, budget, verdict, m[2])
	}
	var missing []string
	for name := range budgets {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmarks missing from run output: %s", strings.Join(missing, ", "))
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past baseline+%d allocs/op", failures, tolerance)
	}
	fmt.Println("benchguard: all hot-path alloc budgets hold")
	return nil
}
