// Command benchguard runs the delivery hot-path benchmarks (BenchmarkFanout,
// BenchmarkEdgePoll, BenchmarkIngest, BenchmarkControlRecovery) and fails
// when allocations per operation regress past the recorded baselines in
// BENCH_fanout.json. It guards the PR-3 hot-path work (encode-once fan-out,
// raw-bytes edge serving), the metrics layer's zero-alloc promise, the PR-6
// journaling budget (origin ingest with the write-ahead journal enabled must
// stay within 2 allocs/frame, so a journal append that encodes or syncs on
// the caller's path shows up here as an ingest regression), and the PR-7
// control-plane recovery path (full journal replay of a 256-record control
// log; a replay that re-journals or decodes lazily shows up here).
//
// It also runs the scale-engine benchmarks (BenchmarkWheel,
// BenchmarkViewerEngine) against BENCH_scale.json: per-event allocation
// budgets with a percentage tolerance, plus the sharded timer wheel's
// minimum ns/event speedup over the Virtual clock's heap at one million
// pending timers — the PR-8 invariant that the event engine stays O(1).
//
// Allocations are the guarded signal because they are deterministic for a
// fixed code path; ns/op depends on the host and is reported but not judged
// (the wheel-vs-heap ratio is judged instead of raw ns, for the same reason).
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// tolerance is how many extra allocs/op a benchmark may show over its
// baseline before benchguard fails. Allocation counts are deterministic in
// steady state but fixed-count runs include warm-up effects (pool fills,
// map growth), so exact matching would flap.
const tolerance = 2

type measurement struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

type baselineFile struct {
	Fanout   map[string]json.RawMessage `json:"fanout"`
	EdgePoll map[string]json.RawMessage `json:"edge_poll"`
	Ingest   map[string]json.RawMessage `json:"ingest"`
	Recovery map[string]json.RawMessage `json:"control_recovery"`
}

type fanoutEntry struct {
	After measurement `json:"after"`
}

type edgePollEntry struct {
	AfterClonePath measurement `json:"after_clone_path"`
	AfterRawPath   measurement `json:"after_raw_path"`
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkFanout/viewers=10-8  20000  31096 ns/op  25.68 MB/s  581 B/op  2 allocs/op
//
// The MB/s column appears only for benchmarks that call b.SetBytes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op\s+(?:[\d.]+ MB/s\s+)?([\d.]+) B/op\s+(\d+) allocs/op`)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	raw, err := os.ReadFile("BENCH_fanout.json")
	if err != nil {
		return err
	}
	var base baselineFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse BENCH_fanout.json: %w", err)
	}

	// budgets maps the full benchmark name (cpu suffix stripped) to the
	// baseline allocs/op it must stay within.
	budgets := make(map[string]float64)
	for sub, rawEntry := range base.Fanout {
		if !strings.HasPrefix(sub, "viewers=") {
			continue // skip prose keys like "allocs_reduction"
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("fanout %q: %w", sub, err)
		}
		budgets["BenchmarkFanout/"+sub] = e.After.AllocsPerOp
	}
	for sub, rawEntry := range base.EdgePoll {
		if !strings.HasPrefix(sub, "broadcasts=") {
			continue
		}
		var e edgePollEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("edge_poll %q: %w", sub, err)
		}
		budgets["BenchmarkEdgePoll/"+sub] = e.AfterClonePath.AllocsPerOp
		budgets["BenchmarkEdgePoll/"+sub+"/raw"] = e.AfterRawPath.AllocsPerOp
	}
	for sub, rawEntry := range base.Ingest {
		if !strings.HasPrefix(sub, "journal=") {
			continue
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("ingest %q: %w", sub, err)
		}
		budgets["BenchmarkIngest/"+sub] = e.After.AllocsPerOp
	}
	for sub, rawEntry := range base.Recovery {
		if !strings.HasPrefix(sub, "records=") {
			continue
		}
		var e fanoutEntry
		if err := json.Unmarshal(rawEntry, &e); err != nil {
			return fmt.Errorf("control_recovery %q: %w", sub, err)
		}
		budgets["BenchmarkControlRecovery/"+sub] = e.After.AllocsPerOp
	}
	if len(budgets) == 0 {
		return fmt.Errorf("no baselines found in BENCH_fanout.json")
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", "Fanout|EdgePoll|Ingest|ControlRecovery",
		"-benchmem", "-benchtime", "2000x", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("bench run failed: %w\n%s", err, out)
	}

	failures := 0
	seen := make(map[string]bool)
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := m[1]
		budget, ok := budgets[name]
		if !ok {
			continue
		}
		seen[name] = true
		allocs, _ := strconv.ParseFloat(m[4], 64)
		verdict := "ok"
		if allocs > budget+tolerance {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("%-40s allocs/op=%g baseline=%g %s (ns/op=%s)\n", name, allocs, budget, verdict, m[2])
	}
	var missing []string
	for name := range budgets {
		if !seen[name] {
			missing = append(missing, name)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("benchmarks missing from run output: %s", strings.Join(missing, ", "))
	}
	if failures > 0 {
		return fmt.Errorf("%d benchmark(s) regressed past baseline+%d allocs/op", failures, tolerance)
	}
	fmt.Println("benchguard: all hot-path alloc budgets hold")
	return runScale()
}

type scaleMeasurement struct {
	NsPerEvent     float64 `json:"ns_per_event"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

type scaleEntry struct {
	After scaleMeasurement `json:"after"`
}

type scaleFile struct {
	Wheel        map[string]json.RawMessage `json:"wheel"`
	ViewerEngine map[string]json.RawMessage `json:"viewer_engine"`
	TolerancePct float64                    `json:"tolerance_pct"`
}

// scaleBenchLine matches one scale-benchmark result line; the per-event
// metrics follow ns/op as ReportMetric pairs, e.g.
//
//	BenchmarkWheel/engine=wheel/pending=1048576  1  19091485 ns/op  0.22 allocs/event  4624123 events/sec  216.3 ns/event
var scaleBenchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+[\d.]+ ns/op(.*)$`)
var metricPair = regexp.MustCompile(`([\d.eE+]+) (allocs/event|ns/event|events/sec)`)

// runScale judges the scale-engine benchmarks against BENCH_scale.json:
// allocs/event within a percentage tolerance of baseline, and the wheel's
// ns/event speedup over the Virtual heap at or above the recorded floor.
func runScale() error {
	raw, err := os.ReadFile("BENCH_scale.json")
	if err != nil {
		return err
	}
	var base scaleFile
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("parse BENCH_scale.json: %w", err)
	}

	budgets := make(map[string]float64) // name -> baseline allocs/event
	addBudgets := func(bench, keyPrefix string, entries map[string]json.RawMessage) error {
		for sub, rawEntry := range entries {
			if !strings.HasPrefix(sub, keyPrefix) {
				continue // skip prose keys like "note" and "min_speedup"
			}
			var e scaleEntry
			if err := json.Unmarshal(rawEntry, &e); err != nil {
				return fmt.Errorf("%s %q: %w", bench, sub, err)
			}
			budgets[bench+"/"+sub] = e.After.AllocsPerEvent
		}
		return nil
	}
	if err := addBudgets("BenchmarkWheel", "engine=", base.Wheel); err != nil {
		return err
	}
	if err := addBudgets("BenchmarkViewerEngine", "viewers=", base.ViewerEngine); err != nil {
		return err
	}
	var minSpeedup float64
	if err := json.Unmarshal(base.Wheel["min_speedup"], &minSpeedup); err != nil {
		return fmt.Errorf("wheel min_speedup: %w", err)
	}
	if len(budgets) == 0 || base.TolerancePct <= 0 {
		return fmt.Errorf("no scale baselines found in BENCH_scale.json")
	}

	// Fixed single-iteration runs: each sub-benchmark already does a fixed
	// amount of work (a full 8M-event drain / a full broadcast) and reports
	// per-event metrics, so more iterations would only add wall time.
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "BenchmarkWheel$|BenchmarkViewerEngine", "-benchtime", "1x", ".")
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("scale bench run failed: %w\n%s", err, out)
	}

	metrics := make(map[string]map[string]float64)
	for _, line := range strings.Split(string(out), "\n") {
		m := scaleBenchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		vals := make(map[string]float64)
		for _, pair := range metricPair.FindAllStringSubmatch(m[2], -1) {
			v, _ := strconv.ParseFloat(pair[1], 64)
			vals[pair[2]] = v
		}
		metrics[m[1]] = vals
	}

	failures := 0
	var missing []string
	for name, budget := range budgets {
		vals, ok := metrics[name]
		if !ok {
			missing = append(missing, name)
			continue
		}
		allocs := vals["allocs/event"]
		limit := budget * (1 + base.TolerancePct/100)
		verdict := "ok"
		if allocs > limit {
			verdict = "REGRESSION"
			failures++
		}
		fmt.Printf("%-50s allocs/event=%.3f baseline=%.3f %s (ns/event=%.1f)\n",
			name, allocs, budget, verdict, vals["ns/event"])
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("scale benchmarks missing from run output: %s", strings.Join(missing, ", "))
	}

	const wheelName = "BenchmarkWheel/engine=wheel/pending=1048576"
	const heapName = "BenchmarkWheel/engine=virtual/pending=1048576"
	wheelNs := metrics[wheelName]["ns/event"]
	heapNs := metrics[heapName]["ns/event"]
	if wheelNs <= 0 || heapNs <= 0 {
		return fmt.Errorf("missing ns/event for the wheel speedup check")
	}
	speedup := heapNs / wheelNs
	verdict := "ok"
	if speedup < minSpeedup {
		verdict = "REGRESSION"
		failures++
	}
	fmt.Printf("%-50s speedup=%.1fx floor=%gx %s\n", "wheel vs virtual heap @1M pending", speedup, minSpeedup, verdict)

	if failures > 0 {
		return fmt.Errorf("%d scale benchmark(s) regressed past BENCH_scale.json", failures)
	}
	fmt.Println("benchguard: scale-engine budgets hold")
	return nil
}
