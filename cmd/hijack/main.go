// Command hijack demonstrates the §7 stream-hijacking vulnerability and the
// proposed signature defense on a local platform: a victim broadcaster's
// upload passes through an ARP-spoofing-style man-in-the-middle that
// replaces every frame with black video, invisibly to the broadcaster —
// then the same attack is repeated against a signed stream and defeated.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/experiments"
)

func main() {
	seed := flag.Uint64("seed", uint64(time.Now().UnixNano()), "random seed")
	flag.Parse()

	fmt.Println("§7 stream hijacking: proof-of-concept on the reproduced platform")
	fmt.Println("(all parties are local processes we own, as in the paper's ethics setup)")
	fmt.Println()
	res, err := experiments.Run("sec7", experiments.Config{Seed: *seed, Quick: true})
	if err != nil {
		fmt.Fprintf(os.Stderr, "hijack: %v\n", err)
		os.Exit(1)
	}
	fmt.Println(res.Text)
}
