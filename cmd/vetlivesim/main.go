// Command vetlivesim runs the repo's custom analyzers (internal/lint):
// locksend, walltime, atomiccounter, hotpathalloc, ctxplumb, lockorder,
// goroleak.
//
// It speaks two protocols:
//
//   - Standalone: `vetlivesim ./...` loads packages itself (via
//     `go list -export`) and prints findings. Packages are analyzed in
//     dependency order against one shared fact store, so lockorder and
//     goroleak see the whole program. `vetlivesim -escape ./...` also runs
//     the hotpathescape compiler-assisted pass (cmd/escapecheck) after the
//     AST analyzers — the full-suite orchestration `make analyze` uses.
//
//   - Vet tool: `go vet -vettool=$(which vetlivesim) ./...`. The go
//     command probes the tool with -V=full (version fingerprint for the
//     build cache) and -flags (supported analyzer flags, as JSON), then
//     invokes it once per package with a JSON config file argument ending
//     in .cfg — the same contract golang.org/x/tools' unitchecker
//     implements. Dependency units arrive as VetxOnly configs: for module
//     packages the analyzers run for their facts alone (diagnostics
//     dropped) and the accumulated fact store is gob-encoded into the
//     VetxOutput .vetx file; dependents decode the .vetx files of their
//     imports (PackageVetx) to seed their own store. Non-module units just
//     merge and re-emit their imports' facts.
//
// Exit status: 0 clean, 1 usage/internal error, 2 findings (matching
// unitchecker so `go vet` reports findings as findings, not tool crashes).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/escape"
	"repro/internal/lint/loader"
)

// modulePrefix identifies this module's packages in unitchecker configs;
// only they are analyzed (the invariants target this repo, and running the
// suite over the standard library would cost every `go vet` user seconds
// for facts nothing consumes).
const modulePrefix = "repro"

func main() {
	analysis.RegisterFactTypes(lint.Analyzers())
	args := os.Args[1:]
	// Protocol probes from the go command. These can arrive regardless of
	// other arguments and must answer before anything else.
	for _, a := range args {
		switch {
		case a == "-V=full" || a == "--V=full":
			printVersion()
			return
		case a == "-flags" || a == "--flags":
			// No analyzer flags beyond the suite itself.
			fmt.Println("[]")
			return
		}
	}
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(unitcheck(args[0]))
	}
	runEscape := false
	if len(args) > 0 && args[0] == "-escape" {
		runEscape = true
		args = args[1:]
	}
	os.Exit(standalone(args, runEscape))
}

// printVersion emulates unitchecker's -V=full output, which the go command
// hashes into the build cache key: "<name> version <fingerprint>". The
// fingerprint is the binary's own digest so rebuilding the tool invalidates
// cached vet results.
func printVersion() {
	name := "vetlivesim"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			io.Copy(h, f)
			f.Close()
			fmt.Printf("%s version devel comments-go-here buildID=%02x\n", name, h.Sum(nil))
			return
		}
	}
	fmt.Printf("%s version devel\n", name)
}

// standalone loads the named patterns (default ./...) and prints findings,
// analyzing in dependency order against one shared fact store. With
// escape=true the hotpathescape pass runs afterwards.
func standalone(patterns []string, runEscape bool) int {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetlivesim:", err)
		return 1
	}
	pkgs, err := loader.Load(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetlivesim:", err)
		return 1
	}
	facts := analysis.NewFactStore()
	total := 0
	for _, pkg := range pkgs {
		findings, err := lint.RunFacts(pkg, lint.Analyzers(), facts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetlivesim:", err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
	}
	if runEscape {
		findings, stats, err := escape.Check(wd, patterns...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetlivesim:", err)
			return 1
		}
		for _, f := range findings {
			fmt.Println(f)
		}
		total += len(findings)
		if len(findings) == 0 {
			fmt.Printf("hotpathescape: %d hotpath function(s) in %d package(s) proved escape-free\n",
				stats.Functions, stats.Packages)
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "vetlivesim: %d finding(s)\n", total)
		return 2
	}
	return 0
}

// vetConfig mirrors the JSON the go command writes for -vettool invocations
// (the unitchecker contract).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// inModule reports whether a unit's import path (possibly the bracketed
// test variant) belongs to this module.
func inModule(importPath string) bool {
	return importPath == modulePrefix || strings.HasPrefix(importPath, modulePrefix+"/")
}

func unitcheck(cfgFile string) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetlivesim:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "vetlivesim: parsing %s: %v\n", cfgFile, err)
		return 1
	}

	// Seed the fact store from the .vetx files of this unit's imports.
	// Each unit re-exports everything it read, so direct imports carry the
	// transitive closure.
	facts := analysis.NewFactStore()
	for _, vetx := range cfg.PackageVetx {
		data, err := os.ReadFile(vetx)
		if err != nil {
			continue // a dependency with no facts file contributes nothing
		}
		if err := facts.Decode(data); err != nil {
			fmt.Fprintf(os.Stderr, "vetlivesim: reading facts %s: %v\n", vetx, err)
			return 1
		}
	}

	writeVetx := func() int {
		if cfg.VetxOutput == "" {
			return 0
		}
		data, err := facts.Encode()
		if err != nil {
			fmt.Fprintln(os.Stderr, "vetlivesim:", err)
			return 1
		}
		if err := os.WriteFile(cfg.VetxOutput, data, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "vetlivesim:", err)
			return 1
		}
		return 0
	}

	// Units outside the module (standard library, vendored deps) are not
	// analyzed: their facts file is just the merge of their imports'.
	if !inModule(cfg.ImportPath) {
		return writeVetx()
	}

	fset := token.NewFileSet()
	var syntax []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, "vetlivesim:", err)
			return 1
		}
		syntax = append(syntax, f)
	}

	compilerImporter := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(path string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		return compilerImporter.Import(path)
	})

	info := loader.NewInfo()
	conf := &types.Config{
		Importer:  imp,
		Sizes:     types.SizesFor(cfg.Compiler, build.Default.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, syntax, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "vetlivesim: type-checking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	pkg := &loader.Package{
		ImportPath: cfg.ImportPath,
		Name:       tpkg.Name(),
		Dir:        cfg.Dir,
		Fset:       fset,
		Syntax:     syntax,
		Types:      tpkg,
		TypesInfo:  info,
	}
	all, err := lint.RunFacts(pkg, lint.Analyzers(), facts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vetlivesim:", err)
		return 1
	}
	if code := writeVetx(); code != 0 {
		return code
	}
	if cfg.VetxOnly {
		return 0
	}
	// The invariants target production code. The standalone loader analyzes
	// only non-test GoFiles; under `go vet` the test-variant compilation
	// units include _test.go files, where real sleeps, wall-clock reads, and
	// context-free requests against local test servers are legitimate — so
	// findings there are dropped to keep the two drivers consistent.
	var findings []lint.Finding
	for _, f := range all {
		if strings.HasSuffix(f.Pos.Filename, "_test.go") {
			continue
		}
		findings = append(findings, f)
	}
	for _, f := range findings {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", f.Pos, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}
