package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTool compiles the vetlivesim binary into a temp dir.
func buildTool(t *testing.T) string {
	t.Helper()
	exe := filepath.Join(t.TempDir(), "vetlivesim")
	out, err := exec.Command("go", "build", "-o", exe, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building vetlivesim: %v\n%s", err, out)
	}
	return exe
}

// writeModule lays out a throwaway module whose path shares this repo's
// module prefix, so its units are analyzed under the vet protocol.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestUnitcheckerFactRoundTrip drives the real `go vet -vettool` protocol
// over a module with a cross-package AB/BA lock inversion: liba's LockSet
// fact must survive the .vetx gob round-trip between separate tool
// invocations for libb to close the cycle.
func TestUnitcheckerFactRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	exe := buildTool(t)
	mod := writeModule(t, map[string]string{
		"go.mod": "module repro/vetlivesime2e\n\ngo 1.24\n",
		"liba/liba.go": `package liba

import "sync"

type Registry struct {
	sync.Mutex
	n int
}

func (r *Registry) Refresh() {
	r.Lock()
	defer r.Unlock()
	r.n++
}
`,
		"libb/libb.go": `package libb

import (
	"sync"

	"repro/vetlivesime2e/liba"
)

type Hub struct {
	mu sync.Mutex
}

func (h *Hub) Sync(r *liba.Registry) {
	h.mu.Lock()
	r.Refresh()
	h.mu.Unlock()
}

func (h *Hub) Rebalance(r *liba.Registry) {
	r.Lock()
	h.mu.Lock()
	h.mu.Unlock()
	r.Unlock()
}
`,
	})

	cmd := exec.Command("go", "vet", "-vettool="+exe, "./...")
	cmd.Dir = mod
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go vet succeeded; want the cross-package lock-order cycle\n%s", out)
	}
	text := string(out)
	if !strings.Contains(text, "lock-order cycle") {
		t.Errorf("output lacks the cycle diagnostic:\n%s", text)
	}
	for _, class := range []string{"liba.Registry.Mutex", "libb.Hub.mu"} {
		if !strings.Contains(text, class) {
			t.Errorf("cycle diagnostic does not name %s:\n%s", class, text)
		}
	}
}

// TestUnitcheckerClean: the same protocol over a module with a consistent
// lock order and terminating goroutines reports nothing.
func TestUnitcheckerClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and runs go vet")
	}
	exe := buildTool(t)
	mod := writeModule(t, map[string]string{
		"go.mod": "module repro/vetlivesime2e\n\ngo 1.24\n",
		"liba/liba.go": `package liba

import "sync"

type Registry struct {
	sync.Mutex
	n int
}

func (r *Registry) Refresh() {
	r.Lock()
	defer r.Unlock()
	r.n++
}
`,
		"libb/libb.go": `package libb

import (
	"sync"

	"repro/vetlivesime2e/liba"
)

type Hub struct {
	mu sync.Mutex
}

func (h *Hub) Sync(r *liba.Registry) {
	h.mu.Lock()
	r.Refresh()
	h.mu.Unlock()
}

func (h *Hub) Drain(r *liba.Registry, ctx <-chan struct{}) {
	go func() {
		for {
			select {
			case <-ctx:
				return
			default:
				r.Refresh()
			}
		}
	}()
}
`,
	})

	cmd := exec.Command("go", "vet", "-vettool="+exe, "./...")
	cmd.Dir = mod
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go vet on a clean module failed: %v\n%s", err, out)
	}
}
