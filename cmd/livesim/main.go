// Command livesim runs the reproduced livestreaming platform as a server:
// control plane, RTMP origins, HLS edges and the message hub, all bound to
// loopback. With -demo it also spawns synthetic broadcasters and viewers so
// the crawler (cmd/crawl) has something to measure. With -snapshot it boots
// a small platform, drives one scripted broadcast through ingest, the edge,
// an HLS viewer, and the message hub, prints the metrics snapshot, and exits
// — the smoke path `make metrics` runs in CI. With -simday it replays a full
// simulated day of the paper's workload through the viewer event engine
// (internal/viewersim) and prints the Fig. 11 delay decomposition. With
// -tenants N it provisions N tenants with API keys at startup; -demo
// broadcasts then round-robin across those keys and the final per-tenant
// usage rollups print at shutdown.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/hls"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

func main() {
	var (
		chunkSecs    = flag.Float64("chunk", 3, "HLS chunk duration in seconds")
		rtmpCap      = flag.Int("rtmp-cap", 100, "RTMP viewer limit per broadcast")
		demo         = flag.Bool("demo", false, "run synthetic broadcasters/viewers")
		demoRate     = flag.Float64("demo-rate", 0.5, "demo broadcasts started per second")
		retention    = flag.Duration("retention", 10*time.Minute, "GC ended broadcasts after this (0 keeps everything)")
		apiRPS       = flag.Float64("api-rps", 0, "per-client control API rate limit (0 = unlimited)")
		whitelist    = flag.String("api-whitelist", "127.0.0.1", "comma-separated hosts exempt from the API limit")
		seed         = flag.Uint64("seed", 1, "random seed")
		snapshot     = flag.Bool("snapshot", false, "run one scripted broadcast on a small platform, print the metrics snapshot, exit")
		metricsEvery = flag.Duration("metrics-every", 0, "log a one-line metrics summary at this interval (0 disables)")
		journalDir   = flag.String("journal-dir", "", "directory for per-origin write-ahead logs; origins recover live broadcasts from them after a crash (empty disables journaling)")
		tenants      = flag.Int("tenants", 0, "provision this many tenants with API keys at startup; -demo broadcasts round-robin across them and final /usage rollups print at shutdown")
		tenantQuota  = flag.Int64("tenant-quota", 1<<30, "per-tenant daily delivered-bytes quota for -tenants plans (0 = unlimited)")
	)
	flag.Parse()

	if *snapshot {
		if err := runSnapshot(); err != nil {
			fmt.Fprintf(os.Stderr, "livesim: snapshot: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *simday {
		chunk := time.Duration(*chunkSecs * float64(time.Second))
		if err := runSimday(*seed, chunk, *rtmpCap); err != nil {
			fmt.Fprintf(os.Stderr, "livesim: simday: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := core.PlatformConfig{
		ChunkDuration:   time.Duration(*chunkSecs * float64(time.Second)),
		RTMPViewerLimit: *rtmpCap,
		Retention:       *retention,
		Seed:            *seed,
	}
	if *apiRPS > 0 {
		cfg.APIRate = &control.RateLimiterConfig{
			RequestsPerSecond: *apiRPS,
			Burst:             *apiRPS * 2,
			Whitelist:         strings.Split(*whitelist, ","),
		}
	}
	if *journalDir != "" {
		if err := os.MkdirAll(*journalDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "livesim: journal dir: %v\n", err)
			os.Exit(1)
		}
		cfg.Journal = func(siteID string) journal.Backend {
			b, err := journal.OpenFile(filepath.Join(*journalDir, siteID+".wal"))
			if err != nil {
				// A site without a journal still streams; it just cannot
				// recover broadcasts across a crash.
				fmt.Fprintf(os.Stderr, "livesim: journal %s: %v\n", siteID, err)
				return nil
			}
			return b
		}
	}
	p := core.NewPlatform(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := p.Start(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "livesim: %v\n", err)
		os.Exit(1)
	}
	defer p.Stop()

	fmt.Printf("platform up\n")
	fmt.Printf("  control API : %s\n", p.ControlURL())
	fmt.Printf("  messages    : %s\n", p.MessageURL())
	fmt.Printf("  metrics     : %s/metrics (flat: /debug/vars)\n", p.BaseURL())
	fmt.Printf("  origins     : %d RTMP listeners\n", len(p.Topo.Origins))
	fmt.Printf("  edges       : %d HLS caches\n", len(p.Topo.Edges))

	var keys []string
	var tenantIDs []string
	if *tenants > 0 {
		plan := control.Plan{
			Name:                    "livesim",
			MaxConcurrentBroadcasts: 8,
			MaxJoinRPS:              50,
			DailyBytesQuota:         *tenantQuota,
		}
		for i := 1; i <= *tenants; i++ {
			tn, err := p.Ctrl.CreateTenant(fmt.Sprintf("tenant-%d", i), plan)
			if err != nil {
				fmt.Fprintf(os.Stderr, "livesim: create tenant: %v\n", err)
				os.Exit(1)
			}
			key, err := p.Ctrl.IssueAPIKey(tn.ID)
			if err != nil {
				fmt.Fprintf(os.Stderr, "livesim: issue key: %v\n", err)
				os.Exit(1)
			}
			tenantIDs = append(tenantIDs, tn.ID)
			keys = append(keys, key.Key)
			fmt.Printf("  tenant      : %s  key=%s  usage=%s/usage?tenant=%s\n",
				tn.ID, key.Key, p.ControlURL(), tn.ID)
		}
	}

	if *demo {
		go runDemo(ctx, p, *demoRate, *seed, keys)
	}
	if *metricsEvery > 0 {
		go logMetrics(ctx, p, *metricsEvery)
	}
	<-ctx.Done()
	fmt.Println("\nshutting down")
	if len(tenantIDs) > 0 {
		p.Ctrl.FlushUsage()
		for _, id := range tenantIDs {
			days, err := p.Ctrl.Usage(id)
			if err != nil {
				continue
			}
			var frames, chunks, bytes int64
			for _, d := range days {
				frames += d.Frames
				chunks += d.Chunks
				bytes += d.Bytes
			}
			fmt.Printf("usage %s: frames=%d chunks=%d bytes=%d over %d day(s)\n",
				id, frames, chunks, bytes, len(days))
		}
	}
}

// logMetrics prints a one-line summary of the busiest counters each tick —
// enough to watch a demo run converge without scraping /metrics.
func logMetrics(ctx context.Context, p *core.Platform, every time.Duration) {
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		snap := p.Metrics().Snapshot()
		sum := func(name string) int64 {
			var n int64
			for _, c := range snap.Counters {
				if c.Name == name {
					n += c.Value
				}
			}
			return n
		}
		fmt.Printf("metrics: frames_in=%d frames_out=%d chunks=%d hls_polls=%d chunk_pulls=%d publishes=%d\n",
			sum("rtmp_frames_in_total"), sum("rtmp_frames_out_total"),
			sum("cdn_origin_chunks_total"), sum("hls_polls_total"),
			sum("cdn_chunk_pulls_total"), sum("pubsub_publishes_total"))
	}
}

// runSnapshot is the -snapshot mode: one origin, one edge, one broadcast of
// ~4 s content at 200 ms chunks, one HLS viewer with a pre-buffer, a couple
// of hearts through the hub — then the full registry snapshot on stdout.
// Every paper delay-component histogram (chunking, origin→edge, polling,
// buffering) gets live observations on this path.
func runSnapshot() error {
	w, f := geo.WowzaSites(), geo.FastlySites()
	p := core.NewPlatform(core.PlatformConfig{
		OriginSites:   []geo.Datacenter{w[0]},
		EdgeSites:     []geo.Datacenter{f[8]},
		ChunkDuration: 200 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := p.Start(ctx); err != nil {
		return err
	}
	defer p.Stop()

	cc := &control.Client{BaseURL: p.ControlURL()}
	uid, err := cc.Register(ctx, "snapshot")
	if err != nil {
		return err
	}
	loc := w[0].Location
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		return err
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		return err
	}

	hc := &hls.Client{BaseURL: p.EdgeURL(p.Topo.NearestEdge(loc)), Metrics: p.Metrics()}
	enc := media.NewEncoder(media.EncoderConfig{}, rng.New(1))
	mc := &pubsub.Client{BaseURL: grant.MessageURL}
	base := time.Now()
	const frames = 100
	for i := 0; i < frames; i++ {
		fr := enc.Next(base.Add(time.Duration(i) * media.FrameDuration))
		if err := pub.Send(&fr); err != nil {
			return fmt.Errorf("send frame %d: %w", i, err)
		}
		if i%25 == 0 {
			if _, err := mc.Publish(ctx, grant.BroadcastID, pubsub.Event{UserID: "v1", Kind: pubsub.KindHeart}); err != nil {
				return fmt.Errorf("publish heart: %w", err)
			}
		}
		// Poll starts only once the edge can serve the first chunk (Poll
		// treats not-found as terminal), below.
		time.Sleep(2 * time.Millisecond)
	}

	// Wait for the edge to have the first chunk, then run the viewer to the
	// end marker.
	deadline := time.Now().Add(10 * time.Second)
	for {
		cl, err := hc.FetchChunkList(ctx, grant.BroadcastID, 0)
		if err == nil && len(cl.Chunks) > 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("edge never served the first chunk: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pollDone := make(chan error, 1)
	go func() {
		pollDone <- hc.Poll(ctx, grant.BroadcastID, hls.PollerConfig{
			Interval:  25 * time.Millisecond,
			PreBuffer: 400 * time.Millisecond,
		})
	}()
	if err := pub.End(); err != nil {
		return err
	}
	if err := <-pollDone; err != nil {
		return fmt.Errorf("hls poll: %w", err)
	}

	out, err := json.MarshalIndent(p.Metrics().Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	fmt.Println(string(out))
	return nil
}

// runDemo continuously starts short broadcasts with a few viewers each. When
// API keys are provisioned (-tenants), broadcasts round-robin across them so
// per-tenant usage rollups accrue; otherwise they run untenanted.
func runDemo(ctx context.Context, p *core.Platform, rate float64, seed uint64, keys []string) {
	clients := []*control.Client{{BaseURL: p.ControlURL()}}
	if len(keys) > 0 {
		clients = clients[:0]
		for _, k := range keys {
			clients = append(clients, &control.Client{BaseURL: p.ControlURL(), APIKey: k})
		}
	}
	src := rng.New(seed)
	cities := geo.CityCatalog()
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		n++
		loc := cities[src.Intn(len(cities))]
		go runDemoBroadcast(ctx, p, clients[n%len(clients)], uint64(n), loc, src.Uint64())
	}
}

func runDemoBroadcast(ctx context.Context, p *core.Platform, cc *control.Client, n uint64, loc geo.Location, seed uint64) {
	uid, err := cc.Register(ctx, fmt.Sprintf("demo-%d", n))
	if err != nil {
		return
	}
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		return
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		return
	}
	// One HLS viewer per demo broadcast: it is what moves chunks through the
	// edges, so delivery metrics — and per-tenant usage rollups — accrue.
	go runDemoViewer(ctx, p, grant.BroadcastID, loc)
	src := rng.New(seed)
	enc := media.NewEncoder(media.EncoderConfig{}, src)
	mc := &pubsub.Client{BaseURL: grant.MessageURL}
	frames := 100 + src.Intn(400) // 4–20 s of video
	ticker := time.NewTicker(media.FrameDuration)
	defer ticker.Stop()
	for i := 0; i < frames; i++ {
		select {
		case <-ctx.Done():
			pub.End()
			return
		case <-ticker.C:
		}
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			return
		}
		if src.Bool(0.02) {
			mc.Publish(ctx, grant.BroadcastID, pubsub.Event{
				UserID: fmt.Sprintf("viewer-%d", src.Intn(50)), Kind: pubsub.KindHeart,
			})
		}
	}
	pub.End()
}

// runDemoViewer polls a demo broadcast's HLS stream from its nearest edge
// until the end marker, giving every demo broadcast real delivered chunks.
func runDemoViewer(ctx context.Context, p *core.Platform, broadcastID string, loc geo.Location) {
	hc := &hls.Client{BaseURL: p.EdgeURL(p.Topo.NearestEdge(loc)), Metrics: p.Metrics()}
	// Poll treats not-found as terminal, so wait for the first chunk.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if cl, err := hc.FetchChunkList(ctx, broadcastID, 0); err == nil && len(cl.Chunks) > 0 {
			break
		}
		if time.Now().After(deadline) || ctx.Err() != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	hc.Poll(ctx, broadcastID, hls.PollerConfig{
		Interval:  200 * time.Millisecond,
		PreBuffer: 400 * time.Millisecond,
	})
}
