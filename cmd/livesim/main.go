// Command livesim runs the reproduced livestreaming platform as a server:
// control plane, RTMP origins, HLS edges and the message hub, all bound to
// loopback. With -demo it also spawns synthetic broadcasters and viewers so
// the crawler (cmd/crawl) has something to measure.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/geo"
	"repro/internal/media"
	"repro/internal/pubsub"
	"repro/internal/rng"
	"repro/internal/rtmp"
)

func main() {
	var (
		chunkSecs = flag.Float64("chunk", 3, "HLS chunk duration in seconds")
		rtmpCap   = flag.Int("rtmp-cap", 100, "RTMP viewer limit per broadcast")
		demo      = flag.Bool("demo", false, "run synthetic broadcasters/viewers")
		demoRate  = flag.Float64("demo-rate", 0.5, "demo broadcasts started per second")
		retention = flag.Duration("retention", 10*time.Minute, "GC ended broadcasts after this (0 keeps everything)")
		apiRPS    = flag.Float64("api-rps", 0, "per-client control API rate limit (0 = unlimited)")
		whitelist = flag.String("api-whitelist", "127.0.0.1", "comma-separated hosts exempt from the API limit")
		seed      = flag.Uint64("seed", 1, "random seed")
	)
	flag.Parse()

	cfg := core.PlatformConfig{
		ChunkDuration:   time.Duration(*chunkSecs * float64(time.Second)),
		RTMPViewerLimit: *rtmpCap,
		Retention:       *retention,
		Seed:            *seed,
	}
	if *apiRPS > 0 {
		cfg.APIRate = &control.RateLimiterConfig{
			RequestsPerSecond: *apiRPS,
			Burst:             *apiRPS * 2,
			Whitelist:         strings.Split(*whitelist, ","),
		}
	}
	p := core.NewPlatform(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := p.Start(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "livesim: %v\n", err)
		os.Exit(1)
	}
	defer p.Stop()

	fmt.Printf("platform up\n")
	fmt.Printf("  control API : %s\n", p.ControlURL())
	fmt.Printf("  messages    : %s\n", p.MessageURL())
	fmt.Printf("  origins     : %d RTMP listeners\n", len(p.Topo.Origins))
	fmt.Printf("  edges       : %d HLS caches\n", len(p.Topo.Edges))

	if *demo {
		go runDemo(ctx, p, *demoRate, *seed)
	}
	<-ctx.Done()
	fmt.Println("\nshutting down")
}

// runDemo continuously starts short broadcasts with a few viewers each.
func runDemo(ctx context.Context, p *core.Platform, rate float64, seed uint64) {
	cc := &control.Client{BaseURL: p.ControlURL()}
	src := rng.New(seed)
	cities := geo.CityCatalog()
	interval := time.Duration(float64(time.Second) / rate)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	n := 0
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
		n++
		loc := cities[src.Intn(len(cities))]
		go runDemoBroadcast(ctx, cc, uint64(n), loc, src.Uint64())
	}
}

func runDemoBroadcast(ctx context.Context, cc *control.Client, n uint64, loc geo.Location, seed uint64) {
	uid, err := cc.Register(ctx, fmt.Sprintf("demo-%d", n))
	if err != nil {
		return
	}
	grant, err := cc.StartBroadcast(ctx, uid, loc)
	if err != nil {
		return
	}
	pub, err := rtmp.Publish(ctx, grant.RTMPAddr, grant.BroadcastID, grant.Token, nil)
	if err != nil {
		return
	}
	src := rng.New(seed)
	enc := media.NewEncoder(media.EncoderConfig{}, src)
	mc := &pubsub.Client{BaseURL: grant.MessageURL}
	frames := 100 + src.Intn(400) // 4–20 s of video
	ticker := time.NewTicker(media.FrameDuration)
	defer ticker.Stop()
	for i := 0; i < frames; i++ {
		select {
		case <-ctx.Done():
			pub.End()
			return
		case <-ticker.C:
		}
		f := enc.Next(time.Now())
		if err := pub.Send(&f); err != nil {
			return
		}
		if src.Bool(0.02) {
			mc.Publish(ctx, grant.BroadcastID, pubsub.Event{
				UserID: fmt.Sprintf("viewer-%d", src.Intn(50)), Kind: pubsub.KindHeart,
			})
		}
	}
	pub.End()
}
