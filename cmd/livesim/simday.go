package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/viewersim"
)

// simday flags. The mode replays a full simulated day of the paper's
// workload through the million-viewer event engine — at -simday-scale 1 that
// is the paper's own volume (~200K broadcasts) on one machine.
var (
	simday         = flag.Bool("simday", false, "run one simulated day through the viewer event engine and exit")
	simdayScale    = flag.Float64("simday-scale", 100, "workload scale divisor (1 = full paper scale)")
	simdayFraction = flag.Float64("simday-fraction", 1, "fraction of the day to simulate (0,1]")
	simdayEngine   = flag.String("engine", "wheel", "event engine: wheel or goroutine")
	simdayShards   = flag.Int("shards", 0, "timer-wheel shards (0 = one per CPU)")
	simdayCap      = flag.Int("viewer-cap", 0, "max simulated viewers per broadcast (0 = uncapped)")
	realHLS        = flag.Int("real-hls", 0, "real-socket HLS viewers watching a concurrent loopback broadcast")
	realRTMP       = flag.Int("real-rtmp", 0, "real-socket RTMP viewers watching a concurrent loopback broadcast")
)

func runSimday(seed uint64, chunk time.Duration, rtmpCap int) error {
	cfg := viewersim.Config{
		Seed:          seed,
		Scale:         *simdayScale,
		DayFraction:   *simdayFraction,
		Engine:        *simdayEngine,
		Shards:        *simdayShards,
		ViewerCap:     *simdayCap,
		ChunkDuration: chunk,
		RTMPCap:       rtmpCap,
		RealHLS:       *realHLS,
		RealRTMP:      *realRTMP,
	}
	fmt.Printf("simday: scale 1:%g, %.0f%% of the day, engine=%s\n",
		cfg.Scale, *simdayFraction*100, cfg.Engine)
	start := time.Now()
	sum, err := viewersim.Run(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start)
	fmt.Println(sum)
	fmt.Printf("simulated %v of platform time in %v wall (%.0f events/sec)\n",
		sum.End.Sub(sum.Start).Round(time.Second), wall.Round(time.Millisecond),
		float64(sum.Events)/wall.Seconds())
	if sum.RealHLS > 0 || sum.RealRTMP > 0 {
		fmt.Printf("real-socket slice: %d hls viewers (%d polls), %d rtmp viewers (%d frames)\n",
			sum.RealHLS, sum.RealPolls, sum.RealRTMP, sum.RealFrames)
	}
	return nil
}
