// Command crawl runs the paper's measurement crawler (§3.1, §4.3) against a
// running platform (see cmd/livesim), writing anonymized broadcast records
// and delay observations as JSONL.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/control"
	"repro/internal/crawler"
	"repro/internal/trace"
)

func main() {
	var (
		api      = flag.String("api", "", "control API base URL (e.g. http://127.0.0.1:NNNN/api)")
		out      = flag.String("out", "broadcasts.jsonl", "broadcast records output file")
		delayOut = flag.String("delays", "delays.jsonl", "delay records output file")
		interval = flag.Duration("interval", 250*time.Millisecond, "global list poll interval")
		tapRTMP  = flag.Bool("rtmp", true, "tap RTMP frame delivery")
		tapHLS   = flag.Bool("hls", true, "poll HLS chunk availability")
		anonKey  = flag.String("anon-key", "local-irb-key", "HMAC key for ID anonymization")
	)
	flag.Parse()
	if *api == "" {
		fmt.Fprintln(os.Stderr, "crawl: -api is required (start cmd/livesim first)")
		os.Exit(2)
	}

	bf, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
		os.Exit(1)
	}
	defer bf.Close()
	df, err := os.Create(*delayOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
		os.Exit(1)
	}
	defer df.Close()
	var mu sync.Mutex
	bw := trace.NewWriter(bf)
	dw := trace.NewWriter(df)

	cr, err := crawler.New(crawler.Config{
		Control:       &control.Client{BaseURL: *api},
		ListInterval:  *interval,
		TapRTMP:       *tapRTMP,
		TapHLS:        *tapHLS,
		WatchMessages: true,
		Anonymizer:    trace.NewAnonymizer([]byte(*anonKey)),
		OnBroadcast: func(r trace.BroadcastRecord) {
			mu.Lock()
			defer mu.Unlock()
			if err := bw.Write(r); err != nil {
				fmt.Fprintf(os.Stderr, "crawl: write: %v\n", err)
			}
		},
		OnDelay: func(r trace.DelayRecord) {
			mu.Lock()
			defer mu.Unlock()
			if err := dw.Write(r); err != nil {
				fmt.Fprintf(os.Stderr, "crawl: write: %v\n", err)
			}
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "crawl: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Printf("crawling %s (ctrl-C to stop)\n", *api)
	cr.Run(ctx)

	mu.Lock()
	bw.Flush()
	dw.Flush()
	mu.Unlock()
	st := cr.Stats()
	fmt.Printf("\ncaptured %d broadcasts (%d polls, %d frames, %d chunks)\n",
		st.BroadcastsDone.Load(), st.ListPolls.Load(),
		st.FramesTapped.Load(), st.ChunksTapped.Load())
}
