// Command escapecheck verifies that every //livesim:hotpath function is
// escape-free: it recompiles each package containing the directive with
// `go tool compile -m=2` (against the export data `go list -export`
// provides, bypassing the build cache that swallows warm-run diagnostics)
// and fails if the compiler reports a moved-to-heap local, a heap-escaping
// allocation, or a heap-leaking parameter inside a hotpath function. This
// turns the 2-allocs/frame fan-out and ~2.5-allocs/event engine budgets
// from benchmark-enforced (cmd/benchguard) into compile-time-enforced.
//
// Deliberate allocations are suppressed in place with
// //lint:allow hotpathescape <reason>; stale suppressions are findings.
//
// Exit status: 0 clean, 1 usage/internal error, 2 findings (matching
// vetlivesim).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint/escape"
)

func main() {
	quiet := flag.Bool("q", false, "suppress the summary line on success")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(1)
	}
	findings, stats, err := escape.Check(wd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "escapecheck:", err)
		os.Exit(1)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "escapecheck: %d finding(s)\n", len(findings))
		os.Exit(2)
	}
	if !*quiet {
		fmt.Printf("escapecheck: %d hotpath function(s) in %d package(s) proved escape-free\n",
			stats.Functions, stats.Packages)
	}
}
