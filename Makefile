# Single source of truth for the commands CI runs, so "works locally, fails
# in CI" never involves a command mismatch. `make ci` is exactly the test
# job; `make lint` is exactly the lint job.

GO ?= go
BIN := bin

.PHONY: all build test race lint vet analyze fmt tidy vuln bench benchguard metrics crash partition-soak tenant-soak scale-smoke fuzz ci clean

all: build test lint

build:
	$(GO) build ./...

test:
	$(GO) test -count=1 ./...

race:
	$(GO) test -race -count=1 ./...

# The repo's custom analyzer suite (internal/lint) driven through the real
# `go vet -vettool` protocol. Zero unsuppressed findings is the bar; false
# positives are silenced in place with a reasoned `//lint:allow` directive.
$(BIN)/vetlivesim: FORCE
	$(GO) build -o $(BIN)/vetlivesim ./cmd/vetlivesim
FORCE:

vet: $(BIN)/vetlivesim
	$(GO) vet ./...
	$(GO) vet -vettool=$(BIN)/vetlivesim ./...

$(BIN)/escapecheck: FORCE
	$(GO) build -o $(BIN)/escapecheck ./cmd/escapecheck

# analyze is the full static-analysis suite (DESIGN.md §8): the seven AST
# analyzers run standalone in dependency order with whole-program fact
# propagation, then the compiler-assisted hotpathescape pass recompiles
# every //livesim:hotpath package with -m=2. Budgeted like benchguard: the
# suite must finish inside ANALYZE_BUDGET seconds (timeout exits 124) so it
# stays cheap enough to gate every push.
ANALYZE_BUDGET ?= 60
analyze: $(BIN)/vetlivesim $(BIN)/escapecheck
	timeout $(ANALYZE_BUDGET) $(BIN)/vetlivesim -escape ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

tidy:
	$(GO) mod tidy -diff

# govulncheck is not vendored; run it when installed (CI installs it), warn
# otherwise so offline dev machines are not blocked.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

lint: fmt tidy vet

bench:
	$(GO) test -run '^$$' -bench 'Fanout|EdgePoll|Ingest|ControlRecovery' -benchmem -benchtime=1x .

# crash is the recovery soak (DESIGN.md §6.2): kill the ingest origin
# mid-broadcast, corrupt the journal tail, restart, and assert every viewer
# still sees every chunk exactly once. Always under -race.
crash:
	$(GO) test -race -count=1 -run 'TestPlatformOriginCrashRecoverySoak' -v ./internal/core/

# partition-soak is the control-plane failure soak (DESIGN.md §6.3): crash
# the control plane mid-broadcast with a torn journal tail, and separately
# cut the serving edge's (and the origins') links to control, asserting in
# both cases that every HLS and RTMP viewer still receives every chunk
# exactly once and no broadcast is falsely ended. Always under -race; the
# fault schedules are seeded, so a failure replays deterministically.
partition-soak:
	$(GO) test -race -count=1 -run 'TestPlatformControlCrashRecoverySoak|TestPlatformControlEdgePartitionSoak' -v ./internal/core/

# tenant-soak is the noisy-neighbor soak (DESIGN.md §11): one over-quota
# tenant hammers joins while two compliant tenants stream through a control
# crash/recover. Asserts the loud tenant throttles at exactly its plan
# limits, compliant viewers see every chunk exactly once, and the journaled
# usage rollups match the per-tenant delivery metrics. Always under -race.
tenant-soak:
	$(GO) test -race -count=1 -run 'TestPlatformNoisyNeighborSoak' -v ./internal/core/

# scale-smoke runs a 1:200-scale simulated day through the million-viewer
# event engine (DESIGN.md §10) under -race, with the real-socket fidelity
# slice watching a concurrent loopback broadcast, and asserts the Fig. 11
# delay shape. Seeded, so a failure replays deterministically.
scale-smoke:
	$(GO) test -race -count=1 -run 'TestScaleSmoke' -v ./internal/viewersim/

# fuzz smoke: a short bounded run of each journal fuzz target (round-trip
# encode/decode and replay over corrupted logs). `go test -fuzz` accepts one
# target per invocation, hence the two runs.
fuzz:
	$(GO) test -run '^$$' -fuzz 'FuzzRecordRoundTrip' -fuzztime 10s ./internal/journal/
	$(GO) test -run '^$$' -fuzz 'FuzzReplay' -fuzztime 10s ./internal/journal/

# benchguard re-runs the hot-path benchmarks and fails on allocs/op
# regressions against the recorded baselines in BENCH_fanout.json.
benchguard:
	$(GO) run ./cmd/benchguard

# metrics boots a small platform, drives one scripted broadcast through
# every layer, and prints the registry snapshot — the smoke test that the
# delay-component histograms fill with live observations.
metrics:
	$(GO) run ./cmd/livesim -snapshot

ci: build race lint analyze vuln crash partition-soak tenant-soak scale-smoke fuzz benchguard metrics

clean:
	rm -rf $(BIN)
