// Package repro's root benchmarks regenerate every table and figure in the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark runs its experiment via the registry and reports the headline
// metrics with b.ReportMetric, so `go test -bench=. -benchmem` prints the
// reproduced numbers next to the timings.
//
// Benchmarks default to the Quick configuration so the full suite finishes
// in minutes; run cmd/experiments for full-scale output.
package repro

import (
	"testing"

	"repro/internal/experiments"
)

// benchCfg returns the per-iteration experiment configuration.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{Quick: true, Seed: seed}
}

// runExperiment executes one registry entry b.N times, reporting the chosen
// metrics from the final run.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, benchCfg(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := res.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- Tables ----------------------------------------------------------------

func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", "periscope_broadcasts", "periscope_views", "meerkat_broadcasts")
}

func BenchmarkTable2SocialGraph(b *testing.B) {
	runExperiment(b, "table2", "avg_degree", "clustering", "avg_path", "assortativity")
}

// --- Section 3 figures -------------------------------------------------------

func BenchmarkFig1DailyBroadcasts(b *testing.B) {
	runExperiment(b, "fig1", "periscope_growth", "meerkat_decline")
}

func BenchmarkFig2DailyUsers(b *testing.B) {
	runExperiment(b, "fig2", "periscope_viewer_broadcaster_ratio")
}

func BenchmarkFig3BroadcastLength(b *testing.B) {
	runExperiment(b, "fig3", "periscope_under_10min")
}

func BenchmarkFig4ViewersPerBroadcast(b *testing.B) {
	runExperiment(b, "fig4", "meerkat_zero_viewer", "periscope_max_viewers")
}

func BenchmarkFig5Interactions(b *testing.B) {
	runExperiment(b, "fig5", "periscope_hearts_over_1000")
}

func BenchmarkFig6UserActivity(b *testing.B) {
	runExperiment(b, "fig6", "periscope_top15_vs_median_views")
}

func BenchmarkFig7FollowersViewers(b *testing.B) {
	runExperiment(b, "fig7", "spearman_rho")
}

// --- Section 4–5 figures -----------------------------------------------------

func BenchmarkFig9ServerMap(b *testing.B) {
	runExperiment(b, "fig9", "same_city", "same_continent")
}

func BenchmarkFig11DelayBreakdown(b *testing.B) {
	runExperiment(b, "fig11", "rtmp_total", "hls_total", "hls_buffering")
}

func BenchmarkFig12PollingDelay(b *testing.B) {
	runExperiment(b, "fig12", "mean_2s", "mean_3s", "mean_4s")
}

func BenchmarkFig13PollingJitter(b *testing.B) {
	runExperiment(b, "fig13", "std_2s", "std_3s", "std_4s")
}

func BenchmarkFig14ServerCPU(b *testing.B) {
	runExperiment(b, "fig14", "gap_at_min", "gap_at_max")
}

func BenchmarkFig15Wowza2Fastly(b *testing.B) {
	runExperiment(b, "fig15", "median_colocated", "median_under500", "colocation_gap")
}

// --- Section 6 figures -------------------------------------------------------

func BenchmarkFig16RTMPBuffer(b *testing.B) {
	runExperiment(b, "fig16", "stall_p0s", "stall_p1s", "delay_p1s")
}

func BenchmarkFig17HLSBuffer(b *testing.B) {
	runExperiment(b, "fig17", "stall_p6s", "stall_p9s", "delay_p6s", "delay_p9s")
}

// --- Section 1 motivation -----------------------------------------------------

func BenchmarkSec1Interactivity(b *testing.B) {
	runExperiment(b, "sec1_interactivity", "misattr_hls_10s", "missed_hls_10s", "misattr_rtmp_10s")
}

// --- Section 7 ---------------------------------------------------------------

func BenchmarkSec7HijackDefense(b *testing.B) {
	runExperiment(b, "sec7", "attack_tampered", "defense_detected", "defense_delivered")
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

func BenchmarkAblationChunkSize(b *testing.B) {
	runExperiment(b, "ablation_chunksize", "total_1.5s", "total_10s")
}

func BenchmarkAblationPollInterval(b *testing.B) {
	runExperiment(b, "ablation_pollinterval", "delay_500ms", "delay_4000ms")
}

func BenchmarkAblationGatewayRelay(b *testing.B) {
	runExperiment(b, "ablation_gateway", "gateway_mean", "direct_mean", "penalty")
}

func BenchmarkAblationRTMPCap(b *testing.B) {
	runExperiment(b, "ablation_rtmpcap", "origin_load_cap_100", "origin_load_cap_unlimited")
}

func BenchmarkAblationSignatureCost(b *testing.B) {
	runExperiment(b, "ablation_signature", "sign_ns", "verify_ns")
}

func BenchmarkAblationRTMPSTransport(b *testing.B) {
	runExperiment(b, "ablation_rtmps", "ns_per_frame_plain", "ns_per_frame_tls", "ns_per_frame_signed")
}

func BenchmarkAblationOverlayMulticast(b *testing.B) {
	runExperiment(b, "ablation_overlay", "fanout_1000", "delay_1000")
}
