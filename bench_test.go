// Package repro's root benchmarks regenerate every table and figure in the
// paper's evaluation (see DESIGN.md §4 for the experiment index). Each
// benchmark runs its experiment via the registry and reports the headline
// metrics with b.ReportMetric, so `go test -bench=. -benchmem` prints the
// reproduced numbers next to the timings.
//
// Benchmarks default to the Quick configuration so the full suite finishes
// in minutes; run cmd/experiments for full-scale output.
package repro

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cdn"
	"repro/internal/clock"
	"repro/internal/control"
	"repro/internal/experiments"
	"repro/internal/geo"
	"repro/internal/journal"
	"repro/internal/media"
	"repro/internal/rtmp"
	"repro/internal/viewersim"
	"repro/internal/wire"
)

// benchCfg returns the per-iteration experiment configuration.
func benchCfg(seed uint64) experiments.Config {
	return experiments.Config{Quick: true, Seed: seed}
}

// runExperiment executes one registry entry b.N times, reporting the chosen
// metrics from the final run.
func runExperiment(b *testing.B, id string, metrics ...string) {
	b.Helper()
	var res *experiments.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.Run(id, benchCfg(uint64(i+1)))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, m := range metrics {
		if v, ok := res.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

// --- Tables ----------------------------------------------------------------

func BenchmarkTable1Datasets(b *testing.B) {
	runExperiment(b, "table1", "periscope_broadcasts", "periscope_views", "meerkat_broadcasts")
}

func BenchmarkTable2SocialGraph(b *testing.B) {
	runExperiment(b, "table2", "avg_degree", "clustering", "avg_path", "assortativity")
}

// --- Section 3 figures -------------------------------------------------------

func BenchmarkFig1DailyBroadcasts(b *testing.B) {
	runExperiment(b, "fig1", "periscope_growth", "meerkat_decline")
}

func BenchmarkFig2DailyUsers(b *testing.B) {
	runExperiment(b, "fig2", "periscope_viewer_broadcaster_ratio")
}

func BenchmarkFig3BroadcastLength(b *testing.B) {
	runExperiment(b, "fig3", "periscope_under_10min")
}

func BenchmarkFig4ViewersPerBroadcast(b *testing.B) {
	runExperiment(b, "fig4", "meerkat_zero_viewer", "periscope_max_viewers")
}

func BenchmarkFig5Interactions(b *testing.B) {
	runExperiment(b, "fig5", "periscope_hearts_over_1000")
}

func BenchmarkFig6UserActivity(b *testing.B) {
	runExperiment(b, "fig6", "periscope_top15_vs_median_views")
}

func BenchmarkFig7FollowersViewers(b *testing.B) {
	runExperiment(b, "fig7", "spearman_rho")
}

// --- Section 4–5 figures -----------------------------------------------------

func BenchmarkFig9ServerMap(b *testing.B) {
	runExperiment(b, "fig9", "same_city", "same_continent")
}

func BenchmarkFig11DelayBreakdown(b *testing.B) {
	runExperiment(b, "fig11", "rtmp_total", "hls_total", "hls_buffering")
}

func BenchmarkFig12PollingDelay(b *testing.B) {
	runExperiment(b, "fig12", "mean_2s", "mean_3s", "mean_4s")
}

func BenchmarkFig13PollingJitter(b *testing.B) {
	runExperiment(b, "fig13", "std_2s", "std_3s", "std_4s")
}

func BenchmarkFig14ServerCPU(b *testing.B) {
	runExperiment(b, "fig14", "gap_at_min", "gap_at_max")
}

func BenchmarkFig15Wowza2Fastly(b *testing.B) {
	runExperiment(b, "fig15", "median_colocated", "median_under500", "colocation_gap")
}

// --- Section 6 figures -------------------------------------------------------

func BenchmarkFig16RTMPBuffer(b *testing.B) {
	runExperiment(b, "fig16", "stall_p0s", "stall_p1s", "delay_p1s")
}

func BenchmarkFig17HLSBuffer(b *testing.B) {
	runExperiment(b, "fig17", "stall_p6s", "stall_p9s", "delay_p6s", "delay_p9s")
}

// --- Section 1 motivation -----------------------------------------------------

func BenchmarkSec1Interactivity(b *testing.B) {
	runExperiment(b, "sec1_interactivity", "misattr_hls_10s", "missed_hls_10s", "misattr_rtmp_10s")
}

// --- Section 7 ---------------------------------------------------------------

func BenchmarkSec7HijackDefense(b *testing.B) {
	runExperiment(b, "sec7", "attack_tampered", "defense_detected", "defense_delivered")
}

// --- Ablations (DESIGN.md §5) -------------------------------------------------

func BenchmarkAblationChunkSize(b *testing.B) {
	runExperiment(b, "ablation_chunksize", "total_1.5s", "total_10s")
}

func BenchmarkAblationPollInterval(b *testing.B) {
	runExperiment(b, "ablation_pollinterval", "delay_500ms", "delay_4000ms")
}

func BenchmarkAblationGatewayRelay(b *testing.B) {
	runExperiment(b, "ablation_gateway", "gateway_mean", "direct_mean", "penalty")
}

func BenchmarkAblationRTMPCap(b *testing.B) {
	runExperiment(b, "ablation_rtmpcap", "origin_load_cap_100", "origin_load_cap_unlimited")
}

func BenchmarkAblationSignatureCost(b *testing.B) {
	runExperiment(b, "ablation_signature", "sign_ns", "verify_ns")
}

func BenchmarkAblationRTMPSTransport(b *testing.B) {
	runExperiment(b, "ablation_rtmps", "ns_per_frame_plain", "ns_per_frame_tls", "ns_per_frame_signed")
}

func BenchmarkAblationOverlayMulticast(b *testing.B) {
	runExperiment(b, "ablation_overlay", "fanout_1000", "delay_1000")
}

// --- Hot-path microbenchmarks (BENCH_fanout.json) ----------------------------
//
// Unlike the experiment benchmarks above, these two measure the delivery data
// plane itself: the per-frame RTMP fan-out cost that dominates Fig. 14's
// server curve, and the per-poll HLS edge serving cost. Clients are raw wire
// loops with reusable buffers so ns/op and allocs/op are the server's.

// rawHandshake dials addr and completes a wire handshake in the given role,
// returning the open connection.
func rawHandshake(b *testing.B, addr, role, id string) net.Conn {
	b.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		b.Fatal(err)
	}
	hs := wire.Handshake{Role: role, BroadcastID: id}
	if err := wire.WriteMessage(conn, wire.Message{Type: wire.MsgHandshake, Body: wire.MarshalHandshake(hs)}); err != nil {
		b.Fatal(err)
	}
	reply, err := wire.ReadMessage(conn)
	if err != nil {
		b.Fatal(err)
	}
	ack, err := wire.UnmarshalAck(reply.Body)
	if err != nil || ack.Status != wire.StatusOK {
		b.Fatalf("handshake ack %q: %v", ack.Status, err)
	}
	return conn
}

// drainWire reads framed messages with a reusable buffer until MsgEnd or
// error — an allocation-free stand-in for a viewer that keeps up.
func drainWire(conn net.Conn) {
	var hdr [5]byte
	buf := make([]byte, 4096)
	for {
		if _, err := io.ReadFull(conn, hdr[:]); err != nil {
			return
		}
		n := int(binary.BigEndian.Uint32(hdr[1:5]))
		if n > cap(buf) {
			buf = make([]byte, n)
		}
		if _, err := io.ReadFull(conn, buf[:n]); err != nil {
			return
		}
		if wire.MsgType(hdr[0]) == wire.MsgEnd {
			return
		}
	}
}

// preframedFrames builds fully framed MsgFrame wire messages (header + body)
// so the publisher loop is a bare conn.Write.
func preframedFrames(n, payload int) [][]byte {
	msgs := make([][]byte, n)
	for i := range msgs {
		f := media.Frame{
			Seq:        uint64(i),
			CapturedAt: time.Unix(0, int64(i)),
			Keyframe:   i%75 == 0,
			Payload:    make([]byte, payload),
		}
		body := media.MarshalFrame(nil, &f)
		msg := make([]byte, 5, 5+len(body))
		msg[0] = byte(wire.MsgFrame)
		binary.BigEndian.PutUint32(msg[1:5], uint32(len(body)))
		msgs[i] = append(msg, body...)
	}
	return msgs
}

// BenchmarkFanout measures ns/frame and allocs/frame for one broadcaster
// fanning out to N viewers — the hot path behind Fig. 14's RTMP curve. The
// publisher pipelines at most 512 frames ahead of the slowest viewer so the
// per-viewer queues never overflow into evictions. The metered variant runs
// the same fan-out with tenant attribution active (per-tenant instruments +
// a control.TenantMeter usage sink): its allocation budget is identical to
// the unmetered path, pinning the tenancy layer's zero-allocs/frame promise.
func BenchmarkFanout(b *testing.B) {
	cases := []struct {
		name     string
		nViewers int
		metered  bool
	}{
		{"viewers=10", 10, false},
		{"viewers=100", 100, false},
		{"viewers=100,metered", 100, true},
	}
	for _, tc := range cases {
		nViewers := tc.nViewers
		b.Run(tc.name, func(b *testing.B) {
			cfg := rtmp.ServerConfig{ViewerQueue: 8192}
			var meter *control.TenantMeter
			if tc.metered {
				meter = &control.TenantMeter{}
				cfg.TenantOf = func(string) string { return "tnt-bench" }
				cfg.TenantUsage = func(string) rtmp.FrameUsage { return meter }
			}
			s := rtmp.NewServer(cfg)
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			ln, err := s.Listen(ctx, "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()
			addr := ln.Addr().String()

			pub := rawHandshake(b, addr, wire.RoleBroadcaster, "bench")
			defer pub.Close()
			var wg sync.WaitGroup
			for i := 0; i < nViewers; i++ {
				conn := rawHandshake(b, addr, wire.RoleViewer, "bench")
				wg.Add(1)
				go func(conn net.Conn) {
					defer wg.Done()
					defer conn.Close()
					drainWire(conn)
				}(conn)
			}

			frames := preframedFrames(256, 512)
			waitOut := func(target int64) {
				deadline := time.Now().Add(time.Minute)
				for i := 0; s.Stats().FramesOut < target; i++ {
					if i%1024 == 1023 && time.Now().After(deadline) {
						b.Fatalf("fan-out stalled: FramesOut=%d want>=%d (viewers evicted?)", s.Stats().FramesOut, target)
					}
					runtime.Gosched()
				}
			}
			// Pipeline at most half the viewer queue so slow drains throttle
			// the publisher instead of overflowing into evictions.
			const window = 4096
			b.SetBytes(int64(len(frames[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := pub.Write(frames[i%len(frames)]); err != nil {
					b.Fatal(err)
				}
				if i%window == window-1 {
					waitOut(int64(i+1-window) * int64(nViewers))
				}
			}
			waitOut(int64(b.N) * int64(nViewers))
			b.StopTimer()
			if got := s.Stats().ActiveViewers; got != int64(nViewers) {
				b.Fatalf("viewers evicted during benchmark: %d of %d left", got, nViewers)
			}
			if tc.metered {
				frames, _, bytes := meter.Totals()
				if want := int64(b.N) * int64(nViewers); frames < want {
					b.Fatalf("usage meter saw %d delivered frames, want >= %d", frames, want)
				} else if bytes == 0 {
					b.Fatal("usage meter saw no delivered bytes")
				}
			}
			wire.WriteMessage(pub, wire.Message{Type: wire.MsgEnd})
			pub.Close()
			wg.Wait()
		})
	}
}

// BenchmarkIngest measures the origin's per-frame ingest cost — chunker
// append, chunk seal, list update — with the write-ahead journal off and on.
// The journaled path must stay within the same per-frame allocation budget:
// appends only enqueue onto the group-commit writer, and the seal-time
// record encode is amortized across the frames of its chunk (5 frames at
// 200 ms chunks).
func BenchmarkIngest(b *testing.B) {
	for _, mode := range []string{"journal=off", "journal=on"} {
		b.Run(mode, func(b *testing.B) {
			cfg := cdn.OriginConfig{
				Site:          geo.Datacenter{ID: "bench"},
				ChunkDuration: 200 * time.Millisecond,
			}
			if mode == "journal=on" {
				cfg.Journal = journal.NewMem()
			}
			origin := cdn.NewOrigin(cfg)
			defer origin.Close()
			payload := make([]byte, 4096)
			base := time.Now()
			b.SetBytes(int64(len(payload)))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f := media.Frame{
					Seq:        uint64(i),
					CapturedAt: base.Add(time.Duration(i) * media.FrameDuration),
					Keyframe:   i%25 == 0,
					Payload:    payload,
				}
				origin.Ingest("bench", f, base)
			}
			b.StopTimer()
		})
	}
}

// benchEdge builds an origin+edge pair with several live broadcasts and a
// warm edge cache.
func benchEdge(b *testing.B, ids []string) *cdn.Edge {
	b.Helper()
	origin := cdn.NewOrigin(cdn.OriginConfig{
		Site:          geo.Datacenter{ID: "origin"},
		ChunkDuration: time.Second,
	})
	edge := cdn.NewEdge(cdn.EdgeConfig{
		Site:    geo.Datacenter{ID: "edge"},
		Resolve: func(string) (cdn.Upstream, error) { return cdn.Upstream{Store: origin}, nil },
	})
	origin.RegisterEdge(edge)
	ctx := context.Background()
	for _, id := range ids {
		for i := 0; i < 75; i++ {
			f := media.Frame{Seq: uint64(i), CapturedAt: time.Unix(0, int64(i)), Keyframe: i%25 == 0, Payload: make([]byte, 256)}
			origin.Ingest(id, f, time.Now())
		}
		if _, err := edge.ChunkList(ctx, id); err != nil {
			b.Fatal(err)
		}
	}
	return edge
}

// BenchmarkEdgePoll measures the steady-state HLS poll path: concurrent
// viewers hitting a warm edge cache, across one and many broadcasts (the
// many-broadcast case is where cache sharding removes lock contention).
func BenchmarkEdgePoll(b *testing.B) {
	multi := make([]string, 8)
	for i := range multi {
		multi[i] = fmt.Sprintf("bench-%d", i)
	}
	cases := []struct {
		name string
		ids  []string
	}{
		{"broadcasts=1", []string{"bench-0"}},
		{"broadcasts=8", multi},
	}
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			edge := benchEdge(b, tc.ids)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := tc.ids[i%len(tc.ids)]
					i++
					if _, err := edge.ChunkList(ctx, id); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
		// The raw variant serves the cached marshalled bytes (what the HTTP
		// handler uses via hls.RawLister) instead of cloning the list.
		b.Run(tc.name+"/raw", func(b *testing.B) {
			edge := benchEdge(b, tc.ids)
			ctx := context.Background()
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					id := tc.ids[i%len(tc.ids)]
					i++
					raw, err := edge.ChunkListRaw(ctx, id)
					if err != nil {
						b.Fatal(err)
					}
					if len(raw.Data) == 0 {
						b.Fatal("empty raw chunklist")
					}
				}
			})
		})
	}
}

// --- Scale engine benchmarks (BENCH_scale.json) ------------------------------
//
// These measure the million-viewer event engine (DESIGN.md §10): the sharded
// timer wheel against the Virtual clock's binary heap under a million pending
// timers, and internal/viewersim end to end at growing fleet sizes. Work per
// sub-benchmark is fixed (a full drain / a full simulated broadcast), so the
// guarded metrics are the per-event ones reported via ReportMetric:
// allocs/event must hold the BENCH_scale.json budget, and the wheel must keep
// its recorded speedup over the heap. Run with -benchtime 1x.

// timerChurn is a population of self-rescheduling timers: each of the
// `pending` timers fires rounds+1 times on its own cadence, so the engine
// holds the full population at all times — the heap's worst case (every
// operation pays the log₂(pending) sift) and the wheel's common case (every
// operation is a bucket append at a fixed offset).
type timerChurn struct {
	schedule func(owner uint64, d time.Duration, fn func(time.Time))
	cbs      []func(time.Time)
	left     []int32
	fired    atomic.Int64
}

func cadenceOf(i int) time.Duration {
	return time.Millisecond + time.Duration(i%997)*37*time.Microsecond
}

func newTimerChurn(pending, rounds int, schedule func(uint64, time.Duration, func(time.Time))) *timerChurn {
	c := &timerChurn{schedule: schedule, cbs: make([]func(time.Time), pending), left: make([]int32, pending)}
	for i := range c.cbs {
		i := i
		c.left[i] = int32(rounds)
		c.cbs[i] = func(time.Time) {
			c.fired.Add(1)
			// left[i] is only touched by owner i's callbacks, which every
			// engine runs serially per owner.
			if c.left[i] > 0 {
				c.left[i]--
				c.schedule(uint64(i), cadenceOf(i), c.cbs[i])
			}
		}
	}
	return c
}

// prime schedules the whole population; the engine's drain runs it down.
func (c *timerChurn) prime() {
	for i := range c.cbs {
		c.schedule(uint64(i), cadenceOf(i), c.cbs[i])
	}
}

// reportPerEvent emits the per-event metrics benchguard judges.
func reportPerEvent(b *testing.B, events int64, wall time.Duration, mallocs uint64) {
	b.Helper()
	if events == 0 {
		b.Fatal("no events fired")
	}
	b.ReportMetric(float64(mallocs)/float64(events), "allocs/event")
	b.ReportMetric(float64(wall.Nanoseconds())/float64(events), "ns/event")
	b.ReportMetric(float64(events)/wall.Seconds(), "events/sec")
}

// BenchmarkWheel races the sharded timer wheel against the Virtual clock's
// heap at one million pending self-rescheduling timers. BENCH_scale.json pins
// the wheel's minimum speedup (ns/event ratio) and both engines' allocs/event.
func BenchmarkWheel(b *testing.B) {
	const pending = 1 << 20
	const rounds = 7
	epoch := time.Unix(0, 0)

	b.Run(fmt.Sprintf("engine=wheel/pending=%d", pending), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			wh := clock.NewWheel(clock.WheelConfig{Epoch: epoch})
			churn := newTimerChurn(pending, rounds, func(o uint64, d time.Duration, fn func(time.Time)) {
				wh.Schedule(o, d, fn)
			})
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			churn.prime()
			wh.Run()
			wall := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			wh.Close()
			reportPerEvent(b, churn.fired.Load(), wall, ms1.Mallocs-ms0.Mallocs)
		}
	})

	b.Run(fmt.Sprintf("engine=virtual/pending=%d", pending), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			clk := clock.NewVirtual(epoch)
			churn := newTimerChurn(pending, rounds, func(_ uint64, d time.Duration, fn func(time.Time)) {
				clk.Schedule(d, fn)
			})
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			t0 := time.Now()
			churn.prime()
			clk.Run()
			wall := time.Since(t0)
			runtime.ReadMemStats(&ms1)
			reportPerEvent(b, churn.fired.Load(), wall, ms1.Mallocs-ms0.Mallocs)
		}
	})
}

// BenchmarkViewerEngine runs internal/viewersim end to end: one broadcast
// with a growing concurrent audience, every viewer a live state machine on
// the wheel. allocs/event is the guarded signal — the pooled viewer/broadcast
// objects must keep per-event allocations flat as the fleet grows 100×.
func BenchmarkViewerEngine(b *testing.B) {
	for _, n := range []int{10_000, 100_000, 1_000_000} {
		n := n
		b.Run(fmt.Sprintf("viewers=%d", n), func(b *testing.B) {
			if testing.Short() && n > 10_000 {
				b.Skip("large fleets under -short")
			}
			for i := 0; i < b.N; i++ {
				var ms0, ms1 runtime.MemStats
				runtime.ReadMemStats(&ms0)
				t0 := time.Now()
				sum, err := viewersim.Run(viewersim.Config{
					Seed:                uint64(i + 1),
					Broadcasts:          1,
					ViewersPerBroadcast: n,
					BroadcastDuration:   12 * time.Second,
					Engine:              "wheel",
				})
				if err != nil {
					b.Fatal(err)
				}
				wall := time.Since(t0)
				runtime.ReadMemStats(&ms1)
				if sum.Views != int64(n) {
					b.Fatalf("views = %d, want %d", sum.Views, n)
				}
				reportPerEvent(b, sum.Events, wall, ms1.Mallocs-ms0.Mallocs)
			}
		})
	}
}

// BenchmarkControlRecovery measures the control plane's crash-recovery path
// (DESIGN.md §6.3): constructing a Service over a journal of live state —
// registrations, broadcast starts, viewer joins — replays every record into
// fresh maps. This is the outage-to-serving latency after a control crash,
// so benchguard pins its per-recovery allocation count: a replay that starts
// decoding lazily or re-journaling on the restore path shows up here.
func BenchmarkControlRecovery(b *testing.B) {
	routes := control.Routes{
		AssignOrigin: func(geo.Location) (string, string) { return "bench-origin", "127.0.0.1:1935" },
		AssignEdge:   func(string, geo.Location) string { return "http://127.0.0.1/hls" },
	}
	b.Run("records=256", func(b *testing.B) {
		// 32 broadcasters + 32 starts + 96 viewer registrations + 96 joins.
		backend := journal.NewMem()
		seed := control.NewService(control.Config{Journal: backend, Seed: 1, Routes: routes})
		const broadcasts = 32
		for i := 0; i < broadcasts; i++ {
			u := seed.Register(fmt.Sprintf("bench-user-%d", i))
			g, err := seed.StartBroadcast(u.ID, geo.Location{})
			if err != nil {
				b.Fatal(err)
			}
			for v := 0; v < 3; v++ {
				vu := seed.Register(fmt.Sprintf("bench-viewer-%d-%d", i, v))
				if _, err := seed.Join(vu.ID, g.BroadcastID, geo.Location{}); err != nil {
					b.Fatal(err)
				}
			}
		}
		seed.Close()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			s := control.NewService(control.Config{Journal: backend, Seed: 1, Routes: routes})
			if n := s.LiveCount(); n != broadcasts {
				b.Fatalf("recovered %d live broadcasts, want %d", n, broadcasts)
			}
			s.Close()
		}
	})
}
